//! A rack-scale fleet of digital-twin servers stepped through the
//! thread-sharded, shared-factorization batch engine.
//!
//! [`Fleet`] supersedes the original scalar `Rack` (which stepped each
//! server's thermal network through its own per-server solve) while
//! preserving its public API — `Rack` remains as a type alias. The
//! physics is unchanged and bit-identical: per-server fan dynamics,
//! failsafe, power models and telemetry run exactly as in
//! `Server::step`; only the thermal integration is hoisted out and
//! solved for all servers at once.
//!
//! The stepping engine works in three layers:
//!
//! - **Hash groups.** Servers are partitioned by their thermal
//!   network's [`structure_hash`](leakctl_thermal::ThermalNetwork::structure_hash)
//!   (mixed-SKU fleets via [`Fleet::from_configs`]); each group batches
//!   through its own shared `(dt, flow)` factorization instead of
//!   falling back to scalar stepping.
//! - **Resident packed state.** While a group's fan flows agree
//!   (the common fleet regime), its thermal state lives in slot-major
//!   [`ShardedLanes`] blocks *between* steps: no per-step
//!   gather/scatter. Each step syncs only the CPU-die slots back into
//!   the servers (the slots per-server dynamics read); a lane is fully
//!   unpacked only on the steps whose telemetry poll actually reads it,
//!   or when [`Fleet::server`]/[`Fleet::server_mut`] is called. When
//!   flows diverge (per-server fan commands), the group transparently
//!   falls back to the per-lane batch API and re-packs once flows
//!   re-converge.
//! - **Shard workers.** Large groups split into per-shard lane blocks
//!   ([`ShardPlan`], thread count from `LEAKCTL_THREADS` or the
//!   machine) and each step's two parallel phases — per-server begin
//!   (fans, failsafe, powers, accounting) and refresh+solve+finish —
//!   run one [`std::thread::scope`] worker per shard. Results are
//!   bit-identical for any thread or shard count.
//!
//! Inlet coupling follows the original model: all servers share one
//! inlet whose temperature drifts with the rack's total heat (exhaust
//! recirculation) — the "real-life data center" setting the paper's
//! conclusion points toward.

use std::ops::Range;
use std::thread;

use leakctl_platform::{FanFault, PlatformError, Server, ServerConfig};
use leakctl_thermal::{
    group_by_structure_hash, BatchLane, Integrator, ShardPlan, ShardedBatchSolver, ShardedLanes,
    StepKernel, ThermalError, ThermalState,
};
use leakctl_units::{Celsius, Joules, Rpm, SimDuration, TempDelta, Utilization, Watts};

use crate::error::CoreError;

/// One structure-hash group: a contiguous run of (storage-ordered)
/// servers sharing a topology, batched through one sharded solver.
#[derive(Debug)]
struct FleetGroup {
    /// Contiguous storage range of this group's servers.
    range: Range<usize>,
    solver: ShardedBatchSolver,
    /// Packed thermal state — authoritative while `Some` (flows
    /// homogeneous); `None` while the group steps through the per-lane
    /// fallback (diverged fans) or before the first step.
    lanes: Option<ShardedLanes>,
    /// State slots of the CPU die nodes (identical across the group's
    /// topology): the only slots synced back every step.
    die_slots: Vec<usize>,
}

/// A rack of servers with inlet-temperature coupling:
///
/// ```text
/// T_inlet = T_room + r · P_rack
/// ```
///
/// where `r` (K/W) models how much of the rack's exhaust heat
/// recirculates to the inlet (0 for perfect containment; a few mK/W for
/// a poorly sealed aisle).
///
/// With the default backward-Euler integrator, every step batches each
/// hash group's thermal solves through shared factorizations on the
/// packed sharded engine; other integrators fall back to per-server
/// stepping (there is no factorization to share).
///
/// # Example
///
/// ```
/// use leakctl::fleet::Fleet;
/// use leakctl_platform::ServerConfig;
/// use leakctl_units::{Rpm, SimDuration, Utilization};
///
/// # fn main() -> Result<(), leakctl::CoreError> {
/// let mut fleet = Fleet::new(ServerConfig::default(), 4, 0.004, 42)?;
/// fleet.command_all(Rpm::new(2400.0));
/// for _ in 0..60 {
///     fleet.step(SimDuration::from_secs(1), Utilization::FULL)?;
/// }
/// assert!(fleet.inlet_temperature().degrees() > 24.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Fleet {
    /// Servers in storage order: hash groups first (each contiguous),
    /// then scalar-integrated servers.
    servers: Vec<Server>,
    /// `index_map[original] = storage` — public indices are original
    /// construction order.
    index_map: Vec<usize>,
    room: Celsius,
    recirculation_k_per_w: f64,
    groups: Vec<FleetGroup>,
    /// Storage indices stepped per-server (non-backward-Euler
    /// integrators: no factorization to share).
    scalar_members: Range<usize>,
}

impl Fleet {
    /// Builds a fleet of `count` servers from a shared config; each
    /// server gets an independent sensor-noise stream derived from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for an empty fleet or negative
    /// recirculation, and propagates server-construction failures.
    pub fn new(
        config: ServerConfig,
        count: usize,
        recirculation_k_per_w: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let configs = vec![config; count];
        Self::with_plan(&configs, recirculation_k_per_w, seed, Self::default_plan())
    }

    /// Builds a heterogeneous (mixed-SKU) fleet: server `i` is built
    /// from `configs[i]` (seeded `seed + i`). Servers are grouped by
    /// thermal-topology hash, and each group batches through its own
    /// shared factorizations — a room of several SKUs still steps
    /// batched within each SKU. The room temperature is taken from the
    /// first config's ambient.
    ///
    /// # Errors
    ///
    /// As [`Fleet::new`].
    pub fn from_configs(
        configs: &[ServerConfig],
        recirculation_k_per_w: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Self::with_plan(configs, recirculation_k_per_w, seed, Self::default_plan())
    }

    /// The environment's thread plan, widened for fleet stepping:
    /// `Fleet::step` spawns its scoped workers twice per step (begin
    /// phase, then solve+finish), so shards need enough per-server
    /// dynamics work to amortize the spawns — a wider floor than the
    /// thermal-only kernels use. [`Fleet::with_plan`] honors a
    /// caller's plan verbatim.
    fn default_plan() -> ShardPlan {
        ShardPlan::from_env().with_min_lanes_per_shard(32)
    }

    /// As [`Fleet::from_configs`], with an explicit thread/shard plan
    /// instead of the environment's (results are bit-identical for any
    /// plan; this is a performance/test knob).
    ///
    /// # Errors
    ///
    /// As [`Fleet::new`].
    pub fn with_plan(
        configs: &[ServerConfig],
        recirculation_k_per_w: f64,
        seed: u64,
        plan: ShardPlan,
    ) -> Result<Self, CoreError> {
        if configs.is_empty() {
            return Err(CoreError::Invalid {
                what: "fleet needs at least one server".to_owned(),
            });
        }
        if !(recirculation_k_per_w >= 0.0 && recirculation_k_per_w.is_finite()) {
            return Err(CoreError::Invalid {
                what: "recirculation coefficient must be non-negative".to_owned(),
            });
        }
        let built = configs
            .iter()
            .enumerate()
            .map(|(i, config)| Server::new(config.clone(), seed.wrapping_add(i as u64)))
            .collect::<Result<Vec<Server>, PlatformError>>()?;
        let room = configs[0].ambient;

        // Partition original indices: batched servers by first-seen
        // structure hash (the shared `group_by_structure_hash` policy),
        // explicit-integrator servers to the scalar tail. Storage order
        // = concatenated groups, then scalars, so every group is one
        // contiguous, shardable server run.
        let (batched_list, scalar_list): (Vec<usize>, Vec<usize>) = (0..built.len())
            .partition(|&i| built[i].config().integrator == Integrator::BackwardEuler);
        let member_lists: Vec<Vec<usize>> = group_by_structure_hash(
            batched_list
                .iter()
                .map(|&i| built[i].thermal_network().structure_hash()),
        )
        .into_iter()
        .map(|positions| positions.into_iter().map(|p| batched_list[p]).collect())
        .collect();
        let mut index_map = vec![0usize; built.len()];
        let mut order: Vec<usize> = Vec::with_capacity(built.len());
        let mut groups = Vec::with_capacity(member_lists.len());
        for members in &member_lists {
            let start = order.len();
            order.extend_from_slice(members);
            groups.push((start..order.len(), members[0]));
        }
        let scalar_start = order.len();
        order.extend_from_slice(&scalar_list);
        for (storage, &original) in order.iter().enumerate() {
            index_map[original] = storage;
        }
        let mut by_storage: Vec<Option<Server>> = built.into_iter().map(Some).collect();
        let mut servers: Vec<Server> = Vec::with_capacity(order.len());
        for &original in &order {
            let Some(server) = by_storage[original].take() else {
                return Err(CoreError::Invalid {
                    what: "internal: server storage permutation is not a bijection".to_owned(),
                });
            };
            servers.push(server);
        }
        let groups = groups
            .into_iter()
            .map(|(range, template_original)| {
                let template = &servers[index_map[template_original]];
                FleetGroup {
                    range,
                    solver: ShardedBatchSolver::with_plan(template.thermal_network(), plan),
                    lanes: None,
                    die_slots: template.core().die_state_slots(),
                }
            })
            .collect();
        Ok(Self {
            servers,
            index_map,
            room,
            recirculation_k_per_w,
            groups,
            scalar_members: scalar_start..order.len(),
        })
    }

    /// Number of servers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `true` when the fleet is empty (construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Number of structure-hash groups batching through shared
    /// factorizations (1 for a homogeneous fleet).
    #[must_use]
    pub fn hash_group_count(&self) -> usize {
        self.groups.len()
    }

    /// Commands every server's fans.
    pub fn command_all(&mut self, rpm: Rpm) {
        for server in &mut self.servers {
            server.command_fan_speed(rpm);
        }
    }

    /// Access to an individual server (e.g. to read per-server
    /// telemetry or ground truth). Takes `&mut self` because the
    /// fleet's thermal state lives packed in the batch engine between
    /// steps: this lazily syncs the server's full state first.
    #[must_use]
    pub fn server(&mut self, index: usize) -> Option<&Server> {
        if index >= self.servers.len() {
            return None;
        }
        let storage = self.index_map[index];
        self.sync_server_state(storage);
        Some(&self.servers[storage])
    }

    /// Mutable access to an individual server (e.g. to attach
    /// per-server controllers). Syncs the server's full state and drops
    /// the owning group's packed residency (the caller may mutate state
    /// the packed copy would shadow); the group re-packs on the next
    /// step.
    #[must_use]
    pub fn server_mut(&mut self, index: usize) -> Option<&mut Server> {
        if index >= self.servers.len() {
            return None;
        }
        let storage = self.index_map[index];
        if let Some(g) = self.group_of(storage) {
            let range = self.groups[g].range.clone();
            Self::evict_group(&mut self.groups[g], &mut self.servers[range]);
        }
        Some(&mut self.servers[storage])
    }

    /// Unpacks every resident group's packed temperatures back into
    /// the per-server states (residency is kept; reads stay cheap until
    /// the next divergence).
    pub fn sync_states(&mut self) {
        for group in &mut self.groups {
            if let Some(lanes) = group.lanes.as_ref() {
                for (offset, server) in self.servers[group.range.clone()].iter_mut().enumerate() {
                    let (_, state) = server.split_thermal();
                    lanes.unpack_lane_into(offset, state);
                }
            }
        }
    }

    /// The hash group owning a storage index, if any.
    fn group_of(&self, storage: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.range.contains(&storage))
    }

    /// Syncs one server's full thermal state from its group's packed
    /// block (no-op when the group is not resident).
    fn sync_server_state(&mut self, storage: usize) {
        if let Some(g) = self.group_of(storage) {
            let group = &self.groups[g];
            if let Some(lanes) = group.lanes.as_ref() {
                let offset = storage - group.range.start;
                let (_, state) = self.servers[storage].split_thermal();
                lanes.unpack_lane_into(offset, state);
            }
        }
    }

    /// Unpacks a group's packed state into its servers and drops
    /// residency. `members` is exactly the group's server run
    /// (`servers[group.range]` in storage coordinates — callers that
    /// hold the full vector slice it first).
    fn evict_group(group: &mut FleetGroup, members: &mut [Server]) {
        if let Some(lanes) = group.lanes.take() {
            assert_eq!(members.len(), group.range.len(), "group member slice");
            for (offset, server) in members.iter_mut().enumerate() {
                let (_, state) = server.split_thermal();
                lanes.unpack_lane_into(offset, state);
            }
        }
    }

    /// Number of shared factorizations currently live across the batch
    /// engines (1 while a homogeneous fleet runs one `(dt, flow)`
    /// operating point; one per distinct per-server fan speed — and
    /// per SKU — otherwise).
    #[must_use]
    pub fn batch_group_count(&self) -> usize {
        self.groups.iter().map(|g| g.solver.group_count()).sum()
    }

    /// Injects (or clears, with [`FanFault::None`]) a fan-bank fault
    /// on server `index`. Routed through [`Fleet::server_mut`], so the
    /// owning group's packed residency is dropped; from the next step
    /// the faulted server's chassis flow diverges from its neighbours,
    /// its group transparently falls back to per-lane stepping, and
    /// every cached factorization invalidates through the ordinary
    /// flow-generation counters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for an out-of-range server or a
    /// [`FanFault::Degraded`] flow scale outside `[0, 1]`.
    pub fn inject_fan_fault(&mut self, index: usize, fault: FanFault) -> Result<(), CoreError> {
        if let FanFault::Degraded { flow_scale } = fault {
            if !(flow_scale.is_finite() && (0.0..=1.0).contains(&flow_scale)) {
                return Err(CoreError::Invalid {
                    what: "degraded fan flow scale must be in [0, 1]".to_owned(),
                });
            }
        }
        self.server_mut(index)
            .ok_or_else(|| CoreError::Invalid {
                what: format!("server index {index} out of range"),
            })?
            .inject_fan_fault(fault);
        Ok(())
    }

    /// Server `index`'s currently injected fan fault (`None` for an
    /// out-of-range index). Reads non-thermal state, so no lane sync
    /// or residency eviction.
    #[must_use]
    pub fn fan_fault(&self, index: usize) -> Option<FanFault> {
        let &storage = self.index_map.get(index)?;
        Some(self.servers[storage].fan_fault())
    }

    /// Snapshots the full fleet — every server's thermal state, fan
    /// bank (faults included), service processor, clock, accounting
    /// and sensor RNG streams — in original index order. Packed shard
    /// blocks are synced into the servers first, so the snapshot is
    /// exact regardless of residency or thread plan.
    pub fn checkpoint(&mut self) -> FleetCheckpoint {
        self.sync_states();
        FleetCheckpoint {
            servers: self
                .index_map
                .iter()
                .map(|&storage| self.servers[storage].clone())
                .collect(),
        }
    }

    /// Restores a [`Fleet::checkpoint`] — into this fleet or any fleet
    /// built from the same configs (any thread/shard plan). Packed
    /// residency is dropped, so the next step re-packs the restored
    /// states verbatim and re-derives factorizations from them: the
    /// resumed trajectory is bit-identical to the uninterrupted one.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] when the checkpoint's server
    /// count or thermal topologies do not match this fleet.
    pub fn restore(&mut self, checkpoint: &FleetCheckpoint) -> Result<(), CoreError> {
        self.can_restore(checkpoint)?;
        for (original, snap) in checkpoint.servers.iter().enumerate() {
            self.servers[self.index_map[original]] = snap.clone();
        }
        for group in &mut self.groups {
            group.lanes = None;
        }
        Ok(())
    }

    /// Checks that `checkpoint` could be restored into this fleet
    /// without doing it — the validation half of [`Fleet::restore`],
    /// exposed so multi-fleet owners (a [`Room`](crate::room::Room))
    /// can validate every rack before mutating any of them.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] when the checkpoint's server
    /// count or thermal topologies do not match this fleet.
    pub fn can_restore(&self, checkpoint: &FleetCheckpoint) -> Result<(), CoreError> {
        if checkpoint.servers.len() != self.servers.len() {
            return Err(CoreError::Invalid {
                what: format!(
                    "checkpoint holds {} servers, fleet has {}",
                    checkpoint.servers.len(),
                    self.servers.len()
                ),
            });
        }
        for (original, snap) in checkpoint.servers.iter().enumerate() {
            let storage = self.index_map[original];
            if snap.thermal_network().structure_hash()
                != self.servers[storage].thermal_network().structure_hash()
            {
                return Err(CoreError::Invalid {
                    what: format!("checkpoint server {original} has a different thermal topology"),
                });
            }
        }
        Ok(())
    }

    /// Advances every server by `dt` at the same activity level, then
    /// updates the shared inlet temperature from the fleet's total heat.
    ///
    /// # Errors
    ///
    /// Propagates platform failures.
    pub fn step(&mut self, dt: SimDuration, activity: Utilization) -> Result<(), CoreError> {
        let inlet = self.inlet_temperature();
        self.step_with_inlet(dt, activity, inlet)
    }

    /// Advances every server by `dt` with an *externally supplied*
    /// inlet temperature — the room-scale coupling point: a
    /// [`Room`](crate::room::Room) reads each rack's cold-aisle air
    /// volume from the room network and feeds it here, replacing the
    /// scalar `T_room + r·P` drift that [`Fleet::step`] applies.
    ///
    /// # Errors
    ///
    /// Propagates platform failures.
    pub fn step_with_inlet(
        &mut self,
        dt: SimDuration,
        activity: Utilization,
        inlet: Celsius,
    ) -> Result<(), CoreError> {
        // Explicit integrators have no factorization to share.
        for server in &mut self.servers[self.scalar_members.clone()] {
            server.set_ambient(inlet)?;
            server.step(dt, activity)?;
        }
        for g in 0..self.groups.len() {
            self.step_group(g, dt, activity, inlet)?;
        }
        Ok(())
    }

    /// One hash group's step: parallel begin phase, serial
    /// homogeneity/factorization, parallel refresh+solve+finish — or
    /// the per-lane fallback while the group's fans disagree.
    fn step_group(
        &mut self,
        g: usize,
        dt: SimDuration,
        activity: Utilization,
        inlet: Celsius,
    ) -> Result<(), CoreError> {
        let group = &mut self.groups[g];
        let servers = &mut self.servers[group.range.clone()];
        let count = servers.len();
        let plan = *group.solver.plan();

        // ---- phase A: per-server dynamics (fans, failsafe, powers,
        // accounting) — independent per server, sharded when resident.
        let shard_ranges: Vec<Range<usize>> = match group.lanes.as_ref() {
            Some(lanes) if lanes.shard_count() > 1 => (0..lanes.shard_count())
                .map(|i| lanes.shard_range(i))
                .collect(),
            _ => std::iter::once(0..count).collect(),
        };
        run_sharded(servers, &shard_ranges, |chunk, _| {
            for server in chunk {
                server.begin_step_with_inlet(dt, activity, inlet)?;
            }
            Ok::<(), PlatformError>(())
        })?;
        if dt.is_zero() {
            return Ok(());
        }

        // ---- phase B (serial): flow homogeneity + shared
        // factorization for the whole group.
        match group
            .solver
            .prepare(|i| servers[i].thermal_network(), count, dt)
        {
            Ok(kernel) => {
                if group.lanes.is_none() {
                    // Flows (re-)converged: state becomes packed-resident.
                    let states: Vec<ThermalState> =
                        servers.iter().map(|s| s.thermal_state().clone()).collect();
                    group.lanes = Some(ShardedLanes::pack(&states, &plan));
                }
                let Some(lanes) = group.lanes.as_mut() else {
                    unreachable!("lanes packed above");
                };
                // ---- phase C: refresh + blocked solve + die-slot
                // sync + finish, one worker per shard.
                let die_slots = &group.die_slots;
                let mut shards: Vec<(Range<usize>, _)> = lanes.shards_mut().collect();
                if shards.len() == 1 {
                    let (_, shard) = &mut shards[0];
                    finish_shard(&kernel, shard, servers, die_slots, dt)?;
                } else {
                    let results =
                        thread::scope(|scope| {
                            let mut handles = Vec::with_capacity(shards.len());
                            let mut rest = &mut servers[..];
                            for (range, shard) in &mut shards {
                                let (chunk, tail) = rest.split_at_mut(range.len());
                                rest = tail;
                                let kernel = &kernel;
                                handles.push(scope.spawn(move || {
                                    finish_shard(kernel, shard, chunk, die_slots, dt)
                                }));
                            }
                            handles
                                .into_iter()
                                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                                .collect::<Vec<_>>()
                        });
                    for result in results {
                        result?;
                    }
                }
                Ok(())
            }
            Err(ThermalError::MixedBatchSignatures) => {
                // Per-server fan commands diverged: state returns to
                // the servers and the group steps through the
                // mixed-signature per-lane engine (same factorization
                // cache) until flows re-converge.
                Self::evict_group(group, servers);
                {
                    let mut lanes_vec: Vec<BatchLane<'_>> = servers
                        .iter_mut()
                        .map(|server| {
                            let (net, state) = server.split_thermal();
                            BatchLane { net, state }
                        })
                        .collect();
                    group
                        .solver
                        .lane_solver_mut()
                        .step(&mut lanes_vec, dt)
                        .map_err(PlatformError::from)?;
                }
                for server in servers.iter_mut() {
                    server.finish_step(dt)?;
                }
                Ok(())
            }
            Err(other) => Err(CoreError::from(PlatformError::from(other))),
        }
    }

    /// The current shared inlet temperature.
    #[must_use]
    pub fn inlet_temperature(&self) -> Celsius {
        let drift = TempDelta::new(self.recirculation_k_per_w * self.total_power().value());
        self.room + drift
    }

    /// Total fleet power (system + fans across all servers), summed in
    /// *original* server order: storage order groups servers by hash,
    /// and float addition is order-sensitive, so summing storage-order
    /// would bitwise-diverge a mixed-SKU fleet from the scalar
    /// reference loop the bit-identity tests compare against.
    #[must_use]
    pub fn total_power(&self) -> Watts {
        self.index_map
            .iter()
            .map(|&storage| self.servers[storage].total_power())
            .sum()
    }

    /// Total fleet energy since construction (original server order,
    /// see [`Fleet::total_power`]).
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.index_map
            .iter()
            .map(|&storage| self.servers[storage].total_energy())
            .sum()
    }

    /// Resets every server's energy, peak-power and timing
    /// accumulators (e.g. after a warm-up phase). Thermal state and
    /// packed residency are untouched.
    pub fn reset_accounting(&mut self) {
        for server in &mut self.servers {
            server.reset_accounting();
        }
    }

    /// The hottest die anywhere in the fleet.
    #[must_use]
    pub fn max_die_temperature(&self) -> Celsius {
        (0..self.servers.len())
            .map(|storage| self.die_temp_at_storage(storage))
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }

    /// Every server's hottest die temperature, in original index
    /// order, appended into `out` (cleared first).
    ///
    /// Reads straight from the packed shard blocks while a group is
    /// resident — no full-state unpack (which [`Fleet::server`] forces)
    /// and no residency eviction (which [`Fleet::server_mut`] costs) —
    /// so rack- and room-level controller loops can poll die
    /// temperatures every decision period for free.
    pub fn die_temps_view(&self, out: &mut Vec<Celsius>) {
        out.clear();
        out.extend(
            self.index_map
                .iter()
                .map(|&storage| self.die_temp_at_storage(storage)),
        );
    }

    /// One server's hottest die, from its group's packed block when
    /// resident (authoritative between steps) or its own state
    /// otherwise.
    fn die_temp_at_storage(&self, storage: usize) -> Celsius {
        if let Some(g) = self.group_of(storage) {
            let group = &self.groups[g];
            if let Some(lanes) = group.lanes.as_ref() {
                let offset = storage - group.range.start;
                let t = group
                    .die_slots
                    .iter()
                    .map(|&slot| lanes.lane_temperature(offset, slot))
                    .fold(f64::NEG_INFINITY, f64::max);
                return Celsius::new(t);
            }
        }
        self.servers[storage].max_die_temperature()
    }
}

/// A full fleet snapshot, produced by [`Fleet::checkpoint`]: server
/// clones (thermal state, fans, faults, accounting, RNG streams) in
/// original index order, restorable into any fleet built from the same
/// configs for a bit-identical resume under any thread plan.
#[derive(Debug, Clone)]
pub struct FleetCheckpoint {
    servers: Vec<Server>,
}

impl FleetCheckpoint {
    /// Number of servers captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `true` when the checkpoint is empty (never, for a real fleet).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }
}

/// Runs `work` over each shard's chunk of `items` — inline when there
/// is a single range, one scoped worker per range otherwise — and
/// reports the lowest shard's failure (deterministic regardless of
/// completion order). `work` also receives its chunk's range so
/// callers can slice per-item side arrays. Shared by the fleet's
/// per-server phases (sharding servers within a rack) and the room's
/// rack phase (sharding fleets across racks).
pub(crate) fn run_sharded<T, E, F>(
    items: &mut [T],
    ranges: &[Range<usize>],
    work: F,
) -> Result<(), E>
where
    T: Send,
    E: Send,
    F: Fn(&mut [T], Range<usize>) -> Result<(), E> + Sync,
{
    if ranges.len() <= 1 {
        let full = 0..items.len();
        return work(items, full);
    }
    let results = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        let mut rest = items;
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let work = &work;
            handles.push(scope.spawn(move || work(chunk, range.clone())));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect::<Vec<_>>()
    });
    results.into_iter().collect()
}

/// Phase C for one shard: lane-major source refresh + blocked solve
/// through the shared factors, then per server the cheap die-slot sync
/// (full unpack only when this step's telemetry poll reads the state)
/// and the clock/telemetry finish.
fn finish_shard(
    kernel: &StepKernel<'_, leakctl_thermal::AutoBackend>,
    shard: &mut leakctl_thermal::PackedLanes,
    chunk: &mut [Server],
    die_slots: &[usize],
    dt: SimDuration,
) -> Result<(), PlatformError> {
    kernel
        .step_shard(shard, |i| chunk[i].thermal_network())
        .map_err(PlatformError::from)?;
    for (i, server) in chunk.iter_mut().enumerate() {
        let end = server.now() + dt;
        let poll_due = server.telemetry_poll_pending(end);
        {
            let (_, state) = server.split_thermal();
            if poll_due {
                shard.unpack_lane_into(i, state);
            } else {
                shard.copy_lane_slots_into(i, die_slots, state);
            }
        }
        server.finish_step(dt)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validated() {
        assert!(matches!(
            Fleet::new(ServerConfig::default(), 0, 0.0, 1),
            Err(CoreError::Invalid { .. })
        ));
        assert!(matches!(
            Fleet::new(ServerConfig::default(), 2, -1.0, 1),
            Err(CoreError::Invalid { .. })
        ));
        let mut fleet = Fleet::new(ServerConfig::default(), 3, 0.001, 1).unwrap();
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_empty());
        assert_eq!(fleet.hash_group_count(), 1, "homogeneous fleet, one SKU");
        assert!(fleet.server(0).is_some());
        assert!(fleet.server(3).is_none());
        assert!(fleet.server_mut(3).is_none());
    }

    #[test]
    fn recirculation_raises_inlet_and_dies() {
        let run = |k: f64| {
            let mut fleet = Fleet::new(ServerConfig::default(), 4, k, 7).unwrap();
            fleet.command_all(Rpm::new(2400.0));
            for _ in 0..1_800 {
                fleet
                    .step(SimDuration::from_secs(1), Utilization::FULL)
                    .unwrap();
            }
            (fleet.inlet_temperature(), fleet.max_die_temperature())
        };
        let (inlet_sealed, die_sealed) = run(0.0);
        let (inlet_leaky, die_leaky) = run(0.004);
        assert!((inlet_sealed.degrees() - 24.0).abs() < 1e-9);
        assert!(
            inlet_leaky.degrees() > 30.0,
            "4 servers × ~500 W × 4 mK/W ≈ +8 °C, got {inlet_leaky}"
        );
        assert!(die_leaky > die_sealed);
    }

    #[test]
    fn fleet_energy_is_sum_of_servers() {
        let mut fleet = Fleet::new(ServerConfig::default(), 2, 0.0, 3).unwrap();
        fleet.command_all(Rpm::new(3000.0));
        for _ in 0..300 {
            fleet
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        let sum: f64 = (0..2)
            .map(|i| fleet.server(i).unwrap().total_energy().value())
            .sum();
        assert!((fleet.total_energy().value() - sum).abs() < 1e-9);
        // Different sensor seeds per server, same physics.
        let a = fleet.server(0).unwrap().measured_cpu_temps();
        let b = fleet.server(1).unwrap().measured_cpu_temps();
        assert_ne!(a, b, "per-server sensor streams must differ");
    }

    #[test]
    fn per_server_control_through_mut_access() {
        let mut fleet = Fleet::new(ServerConfig::default(), 2, 0.0, 5).unwrap();
        fleet
            .server_mut(0)
            .unwrap()
            .command_fan_speed(Rpm::new(1800.0));
        fleet
            .server_mut(1)
            .unwrap()
            .command_fan_speed(Rpm::new(4200.0));
        for _ in 0..1_200 {
            fleet
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        // Diverged fan speeds split the batch into (at least) two
        // factorization groups — transient slew signatures may linger
        // in the cache — and still solve correctly.
        assert!(fleet.batch_group_count() >= 2);
        let hot = fleet.server(0).unwrap().max_die_temperature();
        let cold = fleet.server(1).unwrap().max_die_temperature();
        assert!(hot.degrees() - cold.degrees() > 15.0);
    }

    #[test]
    fn batched_fleet_bit_identical_to_scalar_server_loop() {
        // The batch engine must not change the physics: a fleet stepped
        // through resident packed storage and shared factorizations
        // reproduces an identically seeded scalar Server::step loop bit
        // for bit — energy, temperatures and telemetry alike.
        let count = 3;
        let k = 0.002;
        let mut fleet = Fleet::new(ServerConfig::default(), count, k, 11).unwrap();
        fleet.command_all(Rpm::new(2700.0));

        let config = ServerConfig::default();
        let mut reference: Vec<Server> = (0..count)
            .map(|i| Server::new(config.clone(), 11 + i as u64).unwrap())
            .collect();
        for server in &mut reference {
            server.command_fan_speed(Rpm::new(2700.0));
        }
        let room = config.ambient;

        let dt = SimDuration::from_secs(1);
        for step in 0..600 {
            let act = if step % 120 < 60 {
                Utilization::FULL
            } else {
                Utilization::IDLE
            };
            fleet.step(dt, act).unwrap();
            // Scalar reference: same inlet model, per-server stepping.
            let total: Watts = reference.iter().map(Server::total_power).sum();
            let inlet = room + TempDelta::new(k * total.value());
            for server in &mut reference {
                server.set_ambient(inlet).unwrap();
                server.step(dt, act).unwrap();
            }
        }
        assert_eq!(fleet.batch_group_count(), 1, "one shared factorization");
        for (i, b) in reference.iter().enumerate() {
            let a = fleet.server(i).unwrap();
            assert_eq!(
                a.max_die_temperature(),
                b.max_die_temperature(),
                "server {i} die temperature"
            );
            assert_eq!(a.total_energy(), b.total_energy(), "server {i} energy");
            let a_temps = fleet.server(i).unwrap().measured_cpu_temps();
            assert_eq!(a_temps, b.measured_cpu_temps(), "server {i} telemetry");
            // Full ground-truth state (air/sink nodes included) syncs
            // lazily through the accessor.
            for socket in 0..2 {
                assert_eq!(
                    fleet.server(i).unwrap().sink_temperature(socket).unwrap(),
                    b.sink_temperature(socket).unwrap(),
                    "server {i} socket {socket} sink"
                );
                assert_eq!(
                    fleet.server(i).unwrap().air_temperature(socket).unwrap(),
                    b.air_temperature(socket).unwrap(),
                    "server {i} socket {socket} air"
                );
            }
        }
    }

    #[test]
    fn fleet_results_bit_identical_across_thread_and_shard_counts() {
        // The work partition is a pure performance knob: any thread
        // count and shard width must reproduce the exact same fleet
        // trajectory. 33 servers so multi-shard plans actually split.
        let run = |threads: usize, min_width: usize| {
            let configs = vec![ServerConfig::default(); 33];
            let plan = ShardPlan::new(threads).with_min_lanes_per_shard(min_width);
            let mut fleet = Fleet::with_plan(&configs, 0.001, 21, plan).unwrap();
            fleet.command_all(Rpm::new(2700.0));
            let dt = SimDuration::from_secs(1);
            for step in 0..150 {
                let act = if step % 40 < 20 {
                    Utilization::FULL
                } else {
                    Utilization::IDLE
                };
                fleet.step(dt, act).unwrap();
            }
            let telemetry: Vec<_> = (0..33)
                .map(|i| fleet.server(i).unwrap().measured_cpu_temps())
                .collect();
            (fleet.total_energy(), fleet.max_die_temperature(), telemetry)
        };
        let reference = run(1, 16);
        for (threads, width) in [(2, 4), (8, 1), (3, 7)] {
            let got = run(threads, width);
            assert_eq!(got.0, reference.0, "energy, threads {threads}");
            assert_eq!(got.1, reference.1, "die temp, threads {threads}");
            assert_eq!(got.2, reference.2, "telemetry, threads {threads}");
        }
    }

    #[test]
    fn heterogeneous_fleet_batches_within_hash_groups() {
        // A mixed-SKU rack: single-socket and dual-socket servers.
        // Each SKU batches through its own shared factorization and the
        // trajectories stay bit-identical to a scalar loop.
        let one_socket = ServerConfig {
            sockets: 1,
            process_sigma: vec![1.0],
            ..ServerConfig::default()
        };
        let two_socket = ServerConfig::default();
        let configs: Vec<ServerConfig> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    one_socket.clone()
                } else {
                    two_socket.clone()
                }
            })
            .collect();
        let k = 0.001;
        let mut fleet = Fleet::from_configs(&configs, k, 31).unwrap();
        assert_eq!(fleet.hash_group_count(), 2, "two SKUs, two hash groups");
        fleet.command_all(Rpm::new(3000.0));

        let mut reference: Vec<Server> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| Server::new(c.clone(), 31 + i as u64).unwrap())
            .collect();
        for server in &mut reference {
            server.command_fan_speed(Rpm::new(3000.0));
        }
        let room = configs[0].ambient;
        let dt = SimDuration::from_secs(1);
        for _ in 0..400 {
            fleet.step(dt, Utilization::FULL).unwrap();
            let total: Watts = reference.iter().map(Server::total_power).sum();
            let inlet = room + TempDelta::new(k * total.value());
            for server in &mut reference {
                server.set_ambient(inlet).unwrap();
                server.step(dt, Utilization::FULL).unwrap();
            }
        }
        assert_eq!(
            fleet.batch_group_count(),
            2,
            "one shared factorization per SKU"
        );
        for (i, b) in reference.iter().enumerate() {
            let a = fleet.server(i).unwrap();
            assert_eq!(
                a.max_die_temperature(),
                b.max_die_temperature(),
                "server {i} die temperature"
            );
            assert_eq!(a.total_energy(), b.total_energy(), "server {i} energy");
            assert_eq!(
                fleet.server(i).unwrap().measured_cpu_temps(),
                b.measured_cpu_temps(),
                "server {i} telemetry"
            );
        }
    }

    #[test]
    fn hetero_group_fan_divergence_falls_back_and_recovers() {
        // Regression: a *non-first* hash group whose fans diverge while
        // packed-resident must evict cleanly (sub-slice coordinates)
        // and keep stepping bit-identically through the per-lane
        // fallback.
        let one_socket = ServerConfig {
            sockets: 1,
            process_sigma: vec![1.0],
            ..ServerConfig::default()
        };
        let two_socket = ServerConfig::default();
        let configs: Vec<ServerConfig> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    one_socket.clone()
                } else {
                    two_socket.clone()
                }
            })
            .collect();
        let mut fleet = Fleet::from_configs(&configs, 0.0, 17).unwrap();
        assert_eq!(fleet.hash_group_count(), 2);
        fleet.command_all(Rpm::new(3000.0));
        let dt = SimDuration::from_secs(1);
        // Let both groups go packed-resident.
        for _ in 0..120 {
            fleet.step(dt, Utilization::FULL).unwrap();
        }
        // Diverge fans inside the *second* storage group (the 2-socket
        // SKU sits after the 1-socket run): one hot, one cold.
        fleet
            .server_mut(1)
            .unwrap()
            .command_fan_speed(Rpm::new(1800.0));
        fleet
            .server_mut(3)
            .unwrap()
            .command_fan_speed(Rpm::new(4200.0));
        for _ in 0..600 {
            fleet.step(dt, Utilization::FULL).unwrap();
        }
        // Scalar reference run, same seeds and command schedule.
        let mut reference: Vec<Server> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| Server::new(c.clone(), 17 + i as u64).unwrap())
            .collect();
        for server in &mut reference {
            server.command_fan_speed(Rpm::new(3000.0));
        }
        let room = configs[0].ambient;
        for _ in 0..120 {
            for server in &mut reference {
                server.set_ambient(room).unwrap();
                server.step(dt, Utilization::FULL).unwrap();
            }
        }
        reference[1].command_fan_speed(Rpm::new(1800.0));
        reference[3].command_fan_speed(Rpm::new(4200.0));
        for _ in 0..600 {
            for server in &mut reference {
                server.set_ambient(room).unwrap();
                server.step(dt, Utilization::FULL).unwrap();
            }
        }
        for (i, b) in reference.iter().enumerate() {
            let a = fleet.server(i).unwrap();
            assert_eq!(
                a.max_die_temperature(),
                b.max_die_temperature(),
                "server {i} die temperature"
            );
            assert_eq!(a.total_energy(), b.total_energy(), "server {i} energy");
        }
        let hot = fleet.server(1).unwrap().max_die_temperature();
        let cold = fleet.server(3).unwrap().max_die_temperature();
        assert!(hot.degrees() - cold.degrees() > 10.0, "fans diverged");
    }

    #[test]
    fn explicit_integrator_falls_back_to_scalar_path() {
        let config = ServerConfig {
            integrator: Integrator::ExponentialEuler,
            ..ServerConfig::default()
        };
        let mut fleet = Fleet::new(config, 2, 0.0, 9).unwrap();
        for _ in 0..120 {
            fleet
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        assert_eq!(fleet.batch_group_count(), 0, "batch engine unused");
        assert_eq!(fleet.hash_group_count(), 0, "no batched groups");
        assert!(fleet.max_die_temperature().degrees() > 25.0);
    }

    #[test]
    fn die_temps_view_reads_packed_blocks_without_eviction() {
        let mut fleet = Fleet::new(ServerConfig::default(), 5, 0.001, 19).unwrap();
        for _ in 0..200 {
            fleet
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        // The view (read from packed residency) must agree with the
        // full per-server accessor (which forces a lane sync)…
        let mut view = Vec::new();
        fleet.die_temps_view(&mut view);
        assert_eq!(view.len(), 5);
        for (i, &t) in view.iter().enumerate() {
            assert_eq!(
                t,
                fleet.server(i).unwrap().max_die_temperature(),
                "server {i}"
            );
        }
        // …and reading it must not have perturbed anything.
        let mut again = Vec::new();
        fleet.die_temps_view(&mut again);
        assert_eq!(view, again);
        assert_eq!(
            fleet.max_die_temperature(),
            view.iter()
                .copied()
                .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
        );
    }

    #[test]
    fn degraded_fan_fault_heats_the_faulted_server() {
        let mut fleet = Fleet::new(ServerConfig::default(), 3, 0.0, 23).unwrap();
        fleet.command_all(Rpm::new(3000.0));
        for _ in 0..300 {
            fleet
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        fleet
            .inject_fan_fault(1, FanFault::Degraded { flow_scale: 0.3 })
            .unwrap();
        assert_eq!(
            fleet.fan_fault(1),
            Some(FanFault::Degraded { flow_scale: 0.3 })
        );
        assert_eq!(fleet.fan_fault(0), Some(FanFault::None));
        for _ in 0..900 {
            fleet
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        let faulted = fleet.server(1).unwrap().max_die_temperature();
        let healthy = fleet.server(0).unwrap().max_die_temperature();
        assert!(
            faulted.degrees() > healthy.degrees() + 5.0,
            "30% airflow must run visibly hotter: {faulted} vs {healthy}"
        );
        // Clearing the fault lets the server cool back toward its
        // neighbours. The excursion tripped the thermal failsafe
        // (fans forced to max, commands dropped while engaged), so
        // keep re-commanding the fleet speed as it cools.
        fleet.inject_fan_fault(1, FanFault::None).unwrap();
        for i in 0..1_500 {
            if i % 100 == 0 {
                fleet.command_all(Rpm::new(3000.0));
            }
            fleet
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        let recovered = fleet.server(1).unwrap().max_die_temperature();
        let healthy = fleet.server(0).unwrap().max_die_temperature();
        assert!(
            (recovered.degrees() - healthy.degrees()).abs() < 1.0,
            "cleared fault must converge back: {recovered} vs {healthy}"
        );
        // Validation.
        assert!(fleet.inject_fan_fault(9, FanFault::Stuck).is_err());
        assert!(fleet
            .inject_fan_fault(0, FanFault::Degraded { flow_scale: 2.0 })
            .is_err());
        assert_eq!(fleet.fan_fault(9), None);
    }

    #[test]
    fn stuck_fans_ignore_fleet_commands() {
        let mut fleet = Fleet::new(ServerConfig::default(), 2, 0.0, 29).unwrap();
        fleet.command_all(Rpm::new(1800.0));
        for _ in 0..60 {
            fleet
                .step(SimDuration::from_secs(1), Utilization::IDLE)
                .unwrap();
        }
        fleet.inject_fan_fault(0, FanFault::Stuck).unwrap();
        fleet.command_all(Rpm::new(4200.0));
        for _ in 0..60 {
            fleet
                .step(SimDuration::from_secs(1), Utilization::IDLE)
                .unwrap();
        }
        let stuck = fleet.server(0).unwrap().actual_rpm();
        let healthy = fleet.server(1).unwrap().actual_rpm();
        assert_eq!(stuck, Rpm::new(1800.0), "stuck bank holds speed");
        assert_eq!(healthy, Rpm::new(4200.0));
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let fingerprint = |fleet: &mut Fleet| {
            let temps: Vec<u64> = (0..fleet.len())
                .map(|i| {
                    fleet
                        .server(i)
                        .unwrap()
                        .max_die_temperature()
                        .degrees()
                        .to_bits()
                })
                .collect();
            (fleet.total_energy().value().to_bits(), temps)
        };
        let schedule = |step: u64| {
            if step % 60 < 30 {
                Utilization::FULL
            } else {
                Utilization::saturating_from_fraction(0.3)
            }
        };
        let dt = SimDuration::from_secs(1);
        let configs = vec![ServerConfig::default(); 5];

        // Uninterrupted reference.
        let mut reference = Fleet::from_configs(&configs, 0.001, 37).unwrap();
        reference.command_all(Rpm::new(2400.0));
        for step in 0..200 {
            reference.step(dt, schedule(step)).unwrap();
        }
        let want = fingerprint(&mut reference);

        // Checkpoint mid-run (with a fan fault in flight), restore into
        // a *fresh* fleet under a different thread plan, continue.
        let mut live = Fleet::from_configs(&configs, 0.001, 37).unwrap();
        live.command_all(Rpm::new(2400.0));
        for step in 0..100 {
            live.step(dt, schedule(step)).unwrap();
        }
        let snap = live.checkpoint();
        assert_eq!(snap.len(), 5);
        assert!(!snap.is_empty());
        // Taking the checkpoint must not perturb the live run.
        for step in 100..200 {
            live.step(dt, schedule(step)).unwrap();
        }
        assert_eq!(fingerprint(&mut live), want, "checkpoint perturbed the run");

        let plan = ShardPlan::new(4).with_min_lanes_per_shard(1);
        let mut restored = Fleet::with_plan(&configs, 0.001, 99, plan).unwrap();
        restored.restore(&snap).unwrap();
        for step in 100..200 {
            restored.step(dt, schedule(step)).unwrap();
        }
        assert_eq!(fingerprint(&mut restored), want, "restored run diverged");

        // Mismatched fleets are rejected.
        let mut small = Fleet::from_configs(&configs[..2], 0.001, 37).unwrap();
        assert!(small.restore(&snap).is_err());
    }

    #[test]
    fn sync_states_exposes_packed_temperatures() {
        let mut fleet = Fleet::new(ServerConfig::default(), 2, 0.0, 13).unwrap();
        for _ in 0..120 {
            fleet
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        fleet.sync_states();
        // After an explicit sync the servers' full states are current:
        // air nodes must have warmed above ambient.
        let air = fleet.server(0).unwrap().air_temperature(0).unwrap();
        assert!(air.degrees() > 24.0, "air node stale at {air}");
    }
}
