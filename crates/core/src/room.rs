//! A machine room: many [`Fleet`]s coupled through a coarse air-volume
//! network ([`RoomAirModel`]), stepped with cross-rack work sharding.
//!
//! This is the paper's "real-life data center" setting scaled out: the
//! CRAH supply set-point, under-floor tile-flow distribution and
//! hot-aisle recirculation determine each rack's inlet, the inlet
//! drives leakage, and leakage feeds heat back into the room — the
//! coupling the leakage/cooling co-optimization argument turns on.
//!
//! Each simulated step runs an operator split:
//!
//! 1. **Air phase (serial).** Every rack's dissipated power (from the
//!    start-of-step fleet state) is injected into its hot-aisle volume
//!    and the room network advances by `dt` through the cached
//!    backward-Euler solver (sparse CSR once the room is large enough).
//! 2. **Rack phase (parallel).** Each rack reads its cold-aisle
//!    temperature as the inlet boundary and its [`Fleet`] advances by
//!    `dt` — racks are sharded across scoped workers exactly like
//!    [`ShardedBatchSolver`](leakctl_thermal::ShardedBatchSolver)
//!    shards lanes within one rack, and since racks only interact
//!    through the (serial) air phase, the room trajectory is
//!    **bit-identical for any thread count** (`LEAKCTL_THREADS`).
//!
//! CRAH cooling work is accounted through a chilled-water COP model
//! (`COP(T) = 0.0068·T² + 0.0008·T + 0.458`, the HP Utility Data
//! Center model widely used in thermal-aware scheduling studies), so
//! raising the supply set-point trades leakage against cooling energy —
//! the room-scale version of the paper's Fig. 3 trade-off.

use leakctl_platform::ServerConfig;
use leakctl_thermal::{RoomAirModel, RoomAirSpec, ShardPlan};
use leakctl_units::{AirFlow, Celsius, Joules, Rpm, SimDuration, Utilization, Watts};

use crate::error::CoreError;
use crate::fleet::{run_sharded, Fleet};

/// Scenario builder for a [`Room`]: floor-grid geometry, CRAH
/// placement, per-rack server fleets and the air-side couplings.
///
/// The floor is a `rows × racks_per_row` grid of racks. CRAH units sit
/// along the wall in front of row 0; each rack's share of the
/// under-floor airflow decays with its distance to the nearest CRAH
/// (`1 / (1 + d / tile_decay)`, normalized), so far corners of the
/// room run warmer — the coarse-grid stand-in for plenum pressure
/// distribution.
#[derive(Debug, Clone)]
pub struct RoomConfig {
    /// Rack rows on the floor.
    pub rows: usize,
    /// Racks per row.
    pub racks_per_row: usize,
    /// Servers per rack.
    pub servers_per_rack: usize,
    /// Configuration shared by every server.
    pub server: ServerConfig,
    /// CRAH units along the row-0 wall (placement shapes tile flows).
    pub crah_units: usize,
    /// CRAH supply (set-point) temperature.
    pub crah_supply: Celsius,
    /// Through-flow each server draws; a rack's tile flow is its
    /// placement-weighted share of `servers × airflow_per_server`.
    pub airflow_per_server: AirFlow,
    /// Hot-aisle recirculation fraction `β ∈ [0, 1)`.
    pub recirculation_fraction: f64,
    /// Distance-decay length (in rack pitches) of the tile-flow split.
    pub tile_decay: f64,
    /// Base seed; server `i` of rack `r` derives its sensor streams
    /// from `seed + r·servers_per_rack + i`.
    pub seed: u64,
}

impl RoomConfig {
    /// A room of `rows × racks_per_row` racks of `servers_per_rack`
    /// default servers, with two CRAH units, an 18 °C supply, 120 CFM
    /// per server and 10 % recirculation.
    #[must_use]
    pub fn new(rows: usize, racks_per_row: usize, servers_per_rack: usize) -> Self {
        Self {
            rows,
            racks_per_row,
            servers_per_rack,
            server: ServerConfig::default(),
            crah_units: 2,
            crah_supply: Celsius::new(18.0),
            airflow_per_server: AirFlow::from_cfm(120.0),
            recirculation_fraction: 0.1,
            tile_decay: 6.0,
            seed: 42,
        }
    }

    /// Number of racks on the floor.
    #[must_use]
    pub fn racks(&self) -> usize {
        self.rows * self.racks_per_row
    }

    /// Total server count.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.racks() * self.servers_per_rack
    }

    /// Per-rack tile flows: each rack's placement-weighted share of
    /// the room's total airflow (see the type docs for the weighting).
    #[must_use]
    pub fn tile_flows(&self) -> Vec<AirFlow> {
        let total = self.airflow_per_server.value() * self.servers() as f64;
        let mut weights = Vec::with_capacity(self.racks());
        for row in 0..self.rows {
            for col in 0..self.racks_per_row {
                let d = (0..self.crah_units.max(1))
                    .map(|c| {
                        let crah_col = (c as f64 + 0.5) * self.racks_per_row as f64
                            / self.crah_units.max(1) as f64
                            - 0.5;
                        let dx = col as f64 - crah_col;
                        let dy = row as f64 + 1.0;
                        (dx * dx + dy * dy).sqrt()
                    })
                    .fold(f64::INFINITY, f64::min);
                weights.push(1.0 / (1.0 + d / self.tile_decay));
            }
        }
        let sum: f64 = weights.iter().sum();
        weights
            .into_iter()
            .map(|w| AirFlow::new(total * w / sum))
            .collect()
    }

    fn validate(&self) -> Result<(), CoreError> {
        let invalid = |what: &str| CoreError::Invalid {
            what: what.to_owned(),
        };
        if self.rows == 0 || self.racks_per_row == 0 {
            return Err(invalid("room needs at least one rack"));
        }
        if self.servers_per_rack == 0 {
            return Err(invalid("racks need at least one server"));
        }
        if self.crah_units == 0 {
            return Err(invalid("room needs at least one CRAH unit"));
        }
        if !(self.recirculation_fraction >= 0.0 && self.recirculation_fraction < 1.0) {
            return Err(invalid("recirculation fraction must be in [0, 1)"));
        }
        if !(self.airflow_per_server.value() > 0.0 && self.airflow_per_server.value().is_finite()) {
            return Err(invalid("per-server airflow must be positive"));
        }
        if !(self.tile_decay > 0.0 && self.tile_decay.is_finite()) {
            return Err(invalid("tile decay length must be positive"));
        }
        Ok(())
    }
}

/// Chilled-water CRAH coefficient of performance at a supply
/// temperature: `COP(T) = 0.0068·T² + 0.0008·T + 0.458` (HP Utility
/// Data Center model). Higher set-points cool more efficiently — the
/// counterweight to leakage in the room-scale energy balance.
#[must_use]
pub fn crah_cop(supply: Celsius) -> f64 {
    let t = supply.degrees();
    (0.0068 * t * t + 0.0008 * t + 0.458).max(0.1)
}

/// A machine room: one [`Fleet`] per rack, coupled through a
/// [`RoomAirModel`], stepped with racks sharded across worker threads.
///
/// # Example
///
/// ```
/// use leakctl::room::{Room, RoomConfig};
/// use leakctl_units::{SimDuration, Utilization};
///
/// # fn main() -> Result<(), leakctl::CoreError> {
/// let mut room = Room::new(RoomConfig::new(1, 2, 4))?;
/// for _ in 0..60 {
///     room.step(SimDuration::from_secs(1), Utilization::FULL)?;
/// }
/// // Hot aisles run above the 18 °C supply once the racks heat up.
/// assert!(room.hot_aisle_temperature(0).degrees() > 18.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Room {
    fleets: Vec<Fleet>,
    air: RoomAirModel,
    /// Cross-rack work partition (racks per worker).
    plan: ShardPlan,
    crah_energy: Joules,
    accounted: SimDuration,
    servers_per_rack: usize,
    /// Per-step scratch: rack activities / inlets (no per-step allocs).
    activities: Vec<Utilization>,
    inlets: Vec<Celsius>,
}

impl Room {
    /// Builds the room with the environment's thread plan
    /// (`LEAKCTL_THREADS`, else the machine) for cross-rack sharding.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for an inconsistent config and
    /// propagates construction failures.
    pub fn new(config: RoomConfig) -> Result<Self, CoreError> {
        Self::with_plan(config, ShardPlan::from_env())
    }

    /// As [`Room::new`] with an explicit cross-rack thread plan — a
    /// pure performance knob: the room trajectory is bit-identical for
    /// any plan (racks only interact through the serial air phase).
    ///
    /// # Errors
    ///
    /// As [`Room::new`].
    pub fn with_plan(config: RoomConfig, plan: ShardPlan) -> Result<Self, CoreError> {
        config.validate()?;
        let racks = config.racks();
        let spr = config.servers_per_rack;
        // Each rack is a whole shard's worth of work: shard down to
        // single racks. Within-rack sharding is disabled (plan of 1) —
        // the room parallelizes across racks instead, and fleet
        // trajectories are plan-independent, so this only moves work.
        let plan = plan.with_min_lanes_per_shard(1);
        let rack_configs = vec![config.server.clone(); spr];
        let fleets = (0..racks)
            .map(|r| {
                Fleet::with_plan(
                    &rack_configs,
                    0.0,
                    config.seed.wrapping_add((r * spr) as u64),
                    ShardPlan::new(1),
                )
            })
            .collect::<Result<Vec<Fleet>, CoreError>>()?;
        let spec = RoomAirSpec::with_tile_flows(
            config.crah_supply,
            config.tile_flows(),
            config.recirculation_fraction,
        );
        let air = RoomAirModel::new(spec).map_err(leakctl_platform::PlatformError::from)?;
        Ok(Self {
            fleets,
            air,
            plan,
            crah_energy: Joules::ZERO,
            accounted: SimDuration::ZERO,
            servers_per_rack: spr,
            activities: Vec::with_capacity(racks),
            inlets: Vec::with_capacity(racks),
        })
    }

    /// Number of racks.
    #[must_use]
    pub fn racks(&self) -> usize {
        self.fleets.len()
    }

    /// Total server count.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.fleets.len() * self.servers_per_rack
    }

    /// Rack `rack`'s fleet (read side; per-server ground truth goes
    /// through [`Fleet::server`] on the mutable accessor).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range rack.
    #[must_use]
    pub fn fleet(&self, rack: usize) -> &Fleet {
        &self.fleets[rack]
    }

    /// Mutable access to rack `rack`'s fleet (e.g. to attach
    /// controllers or read synced per-server state).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range rack.
    #[must_use]
    pub fn fleet_mut(&mut self, rack: usize) -> &mut Fleet {
        &mut self.fleets[rack]
    }

    /// The room air network (read side).
    #[must_use]
    pub fn air(&self) -> &RoomAirModel {
        &self.air
    }

    /// Commands every fan in the room.
    pub fn command_all(&mut self, rpm: Rpm) {
        for fleet in &mut self.fleets {
            fleet.command_all(rpm);
        }
    }

    /// Re-pins the CRAH supply set-point (takes effect from the next
    /// step's air phase).
    ///
    /// # Errors
    ///
    /// Propagates network errors (never expected for the built-in
    /// supply boundary).
    pub fn set_crah_supply(&mut self, supply: Celsius) -> Result<(), CoreError> {
        self.air
            .set_supply(supply)
            .map_err(leakctl_platform::PlatformError::from)?;
        Ok(())
    }

    /// Re-balances one rack's tile flow (see
    /// [`RoomAirModel::set_tile_flow`]).
    ///
    /// # Errors
    ///
    /// Propagates air-model errors (out-of-range rack, bad flow).
    pub fn set_tile_flow(&mut self, rack: usize, flow: AirFlow) -> Result<(), CoreError> {
        self.air
            .set_tile_flow(rack, flow)
            .map_err(leakctl_platform::PlatformError::from)?;
        Ok(())
    }

    /// Advances the whole room by `dt` with every rack at the same
    /// activity level.
    ///
    /// # Errors
    ///
    /// Propagates platform and solver failures.
    pub fn step(&mut self, dt: SimDuration, activity: Utilization) -> Result<(), CoreError> {
        let racks = self.fleets.len();
        self.activities.clear();
        self.activities.resize(racks, activity);
        let activities = std::mem::take(&mut self.activities);
        let result = self.advance(dt, &activities);
        self.activities = activities;
        result
    }

    /// Advances the room by `dt` with per-rack activity levels — the
    /// entry point thermal-aware job placement drives (hot corners get
    /// the light work).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] when `activities` does not have
    /// one entry per rack, and propagates platform/solver failures.
    pub fn step_racks(
        &mut self,
        dt: SimDuration,
        activities: &[Utilization],
    ) -> Result<(), CoreError> {
        if activities.len() != self.fleets.len() {
            return Err(CoreError::Invalid {
                what: "one activity level per rack required".to_owned(),
            });
        }
        self.advance(dt, activities)
    }

    /// One operator-split step: serial air phase, then the rack phase
    /// sharded across scoped workers.
    fn advance(&mut self, dt: SimDuration, activities: &[Utilization]) -> Result<(), CoreError> {
        if dt.is_zero() {
            return Ok(());
        }
        // ---- air phase (serial): inject start-of-step rack powers,
        // advance the room network.
        for (r, fleet) in self.fleets.iter().enumerate() {
            self.air
                .set_rack_power(r, fleet.total_power())
                .map_err(leakctl_platform::PlatformError::from)?;
        }
        self.air
            .step(dt)
            .map_err(leakctl_platform::PlatformError::from)?;

        // ---- rack phase (parallel): cold-aisle temperature → inlet
        // boundary, one fleet step per rack, racks sharded across
        // workers. Racks are independent within the step, so any
        // partition is bit-identical.
        self.inlets.clear();
        self.inlets
            .extend((0..self.fleets.len()).map(|r| self.air.cold_aisle_temperature(r)));
        let ranges = self.plan.ranges(self.fleets.len());
        let inlets = &self.inlets;
        run_sharded(&mut self.fleets, &ranges, |chunk, range| {
            for ((fleet, &inlet), &activity) in chunk
                .iter_mut()
                .zip(&inlets[range.clone()])
                .zip(&activities[range])
            {
                fleet.step_with_inlet(dt, activity, inlet)?;
            }
            Ok::<(), CoreError>(())
        })?;

        // ---- CRAH cooling work over the step, through the COP at the
        // current set-point.
        let removed = self.air.crah_heat_removed().value().max(0.0);
        let cop = crah_cop(self.air.supply_temperature());
        self.crah_energy += Watts::new(removed / cop) * dt;
        self.accounted += dt;
        Ok(())
    }

    /// Rack `rack`'s cold-aisle (inlet) temperature.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range rack.
    #[must_use]
    pub fn cold_aisle_temperature(&self, rack: usize) -> Celsius {
        self.air.cold_aisle_temperature(rack)
    }

    /// Rack `rack`'s hot-aisle temperature.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range rack.
    #[must_use]
    pub fn hot_aisle_temperature(&self, rack: usize) -> Celsius {
        self.air.hot_aisle_temperature(rack)
    }

    /// The mixed return temperature at the CRAH intake.
    #[must_use]
    pub fn return_temperature(&self) -> Celsius {
        self.air.return_temperature()
    }

    /// Total IT power (every fleet, rack order).
    #[must_use]
    pub fn total_power(&self) -> Watts {
        self.fleets.iter().map(Fleet::total_power).sum()
    }

    /// Accumulated IT (server + fan) energy since construction.
    #[must_use]
    pub fn it_energy(&self) -> Joules {
        self.fleets.iter().map(Fleet::total_energy).sum()
    }

    /// Accumulated CRAH cooling energy (heat removed over COP).
    #[must_use]
    pub fn cooling_energy(&self) -> Joules {
        self.crah_energy
    }

    /// Total room energy: IT plus CRAH cooling work.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.it_energy() + self.crah_energy
    }

    /// Time the room has been stepped since construction or the last
    /// [`Room::reset_accounting`].
    #[must_use]
    pub fn accounted_time(&self) -> SimDuration {
        self.accounted
    }

    /// Resets all energy accounting — per-server accumulators, the
    /// CRAH cooling energy and the accounted clock (e.g. after a
    /// warm-up phase). Thermal state is untouched.
    pub fn reset_accounting(&mut self) {
        for fleet in &mut self.fleets {
            fleet.reset_accounting();
        }
        self.crah_energy = Joules::ZERO;
        self.accounted = SimDuration::ZERO;
    }

    /// The hottest die anywhere in the room (packed-block read path;
    /// no unpacks).
    #[must_use]
    pub fn max_die_temperature(&self) -> Celsius {
        self.fleets
            .iter()
            .map(Fleet::max_die_temperature)
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }

    /// Every rack's hottest die temperature, appended into `out`
    /// (cleared first) — the controller-loop read path: like
    /// [`Fleet::die_temps_view`] it reads straight from the packed
    /// shard blocks, with no state unpacks and no residency eviction.
    pub fn rack_max_die_temperatures(&self, out: &mut Vec<Celsius>) {
        out.clear();
        out.extend(self.fleets.iter().map(Fleet::max_die_temperature));
    }

    /// The rack whose hottest die is highest right now — the hot spot
    /// a tile-flow or set-point controller would act on.
    #[must_use]
    pub fn hottest_rack(&self) -> usize {
        (0..self.fleets.len())
            .max_by(|&a, &b| {
                self.fleets[a]
                    .max_die_temperature()
                    .partial_cmp(&self.fleets[b].max_die_temperature())
                    .expect("die temps are finite")
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RoomConfig {
        let mut config = RoomConfig::new(1, 2, 3);
        config.crah_supply = Celsius::new(20.0);
        config.recirculation_fraction = 0.2;
        config
    }

    #[test]
    fn construction_validated() {
        assert!(Room::new(RoomConfig::new(0, 2, 2)).is_err());
        assert!(Room::new(RoomConfig::new(1, 0, 2)).is_err());
        assert!(Room::new(RoomConfig::new(1, 2, 0)).is_err());
        let mut bad = RoomConfig::new(1, 2, 2);
        bad.recirculation_fraction = 1.0;
        assert!(Room::new(bad).is_err());
        let mut bad = RoomConfig::new(1, 2, 2);
        bad.crah_units = 0;
        assert!(Room::new(bad).is_err());
        let mut bad = RoomConfig::new(1, 2, 2);
        bad.airflow_per_server = AirFlow::ZERO;
        assert!(Room::new(bad).is_err());

        let room = Room::new(small()).unwrap();
        assert_eq!(room.racks(), 2);
        assert_eq!(room.servers(), 6);
        assert_eq!(room.air().racks(), 2);
    }

    #[test]
    fn tile_flows_decay_with_crah_distance() {
        let mut config = RoomConfig::new(3, 4, 8);
        config.crah_units = 1;
        let flows = config.tile_flows();
        assert_eq!(flows.len(), 12);
        let total: f64 = flows.iter().map(|q| q.value()).sum();
        let want = config.airflow_per_server.value() * config.servers() as f64;
        assert!((total - want).abs() < 1e-9 * want, "split preserves total");
        // Row 0 (next to the CRAH wall) out-draws row 2.
        assert!(flows[0].value() > flows[8].value());
        // Within a row, the tile under the CRAH out-draws the corner.
        assert!(flows[1].value() > flows[3].value());
    }

    #[test]
    fn room_warms_and_conserves_energy_at_steady_state() {
        let mut room = Room::new(small()).unwrap();
        room.command_all(Rpm::new(3000.0));
        let dt = SimDuration::from_secs(1);
        for _ in 0..3_600 {
            room.step(dt, Utilization::FULL).unwrap();
        }
        // Hot aisle above cold aisle above supply.
        for r in 0..room.racks() {
            assert!(room.hot_aisle_temperature(r) > room.cold_aisle_temperature(r));
            assert!(room.cold_aisle_temperature(r).degrees() > 20.0);
        }
        // At (quasi-)steady state the CRAH extracts the IT dissipation.
        let removed = room.air().crah_heat_removed().value();
        let it = room.total_power().value();
        assert!(
            ((removed - it) / it).abs() < 1e-6,
            "CRAH {removed} W vs IT {it} W"
        );
        // Energy accounting: IT + cooling, cooling > 0, time tracked.
        assert!(room.cooling_energy() > Joules::ZERO);
        assert_eq!(
            room.total_energy(),
            room.it_energy() + room.cooling_energy()
        );
        assert_eq!(room.accounted_time(), SimDuration::from_secs(3_600));
        // Accounting resets cleanly (physics untouched).
        let die = room.max_die_temperature();
        room.reset_accounting();
        assert_eq!(room.total_energy(), Joules::ZERO);
        assert_eq!(room.accounted_time(), SimDuration::ZERO);
        assert_eq!(room.max_die_temperature(), die);
    }

    #[test]
    fn warmer_supply_trades_cooling_for_leakage() {
        let run = |supply: f64| {
            let mut config = small();
            config.crah_supply = Celsius::new(supply);
            let mut room = Room::with_plan(config, ShardPlan::new(1)).unwrap();
            room.command_all(Rpm::new(3000.0));
            for _ in 0..2_400 {
                room.step(SimDuration::from_secs(1), Utilization::FULL)
                    .unwrap();
            }
            room
        };
        let cold = run(16.0);
        let warm = run(27.0);
        // Warmer supply → hotter dies → more leakage → more IT energy…
        assert!(warm.max_die_temperature() > cold.max_die_temperature());
        assert!(warm.it_energy() > cold.it_energy());
        // …but the CRAH works at a much better COP.
        assert!(crah_cop(Celsius::new(27.0)) > crah_cop(Celsius::new(16.0)));
        assert!(warm.cooling_energy() < cold.cooling_energy());
    }

    #[test]
    fn per_rack_activities_shape_the_room() {
        let mut room = Room::with_plan(small(), ShardPlan::new(2)).unwrap();
        assert!(matches!(
            room.step_racks(SimDuration::from_secs(1), &[Utilization::FULL]),
            Err(CoreError::Invalid { .. })
        ));
        for _ in 0..1_800 {
            room.step_racks(
                SimDuration::from_secs(1),
                &[Utilization::FULL, Utilization::IDLE],
            )
            .unwrap();
        }
        assert!(room.hot_aisle_temperature(0) > room.hot_aisle_temperature(1));
        assert_eq!(room.hottest_rack(), 0);
        let mut temps = Vec::new();
        room.rack_max_die_temperatures(&mut temps);
        assert_eq!(temps.len(), 2);
        assert!(temps[0] > temps[1]);
    }

    #[test]
    fn trajectory_bit_identical_across_rack_shard_plans() {
        let run = |threads: usize| {
            let mut config = RoomConfig::new(2, 2, 2);
            config.recirculation_fraction = 0.25;
            let mut room = Room::with_plan(config, ShardPlan::new(threads)).unwrap();
            room.command_all(Rpm::new(2700.0));
            let dt = SimDuration::from_secs(1);
            for step in 0..200 {
                let act = if step % 60 < 30 {
                    Utilization::FULL
                } else {
                    Utilization::IDLE
                };
                room.step(dt, act).unwrap();
            }
            let aisles: Vec<u64> = (0..room.racks())
                .map(|r| room.cold_aisle_temperature(r).degrees().to_bits())
                .collect();
            (
                room.total_energy(),
                room.max_die_temperature(),
                room.cooling_energy(),
                aisles,
            )
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), reference, "threads {threads}");
        }
    }
}
