//! A machine room: many [`Fleet`]s coupled through a coarse air-volume
//! network ([`RoomAirModel`]), stepped with cross-rack work sharding.
//!
//! This is the paper's "real-life data center" setting scaled out: the
//! CRAH supply set-point, under-floor tile-flow distribution and
//! hot-aisle recirculation determine each rack's inlet, the inlet
//! drives leakage, and leakage feeds heat back into the room — the
//! coupling the leakage/cooling co-optimization argument turns on.
//!
//! Each simulated step runs an operator split:
//!
//! 1. **Air phase (serial).** Every rack's dissipated power (from the
//!    start-of-step fleet state) is injected into its hot-aisle volume
//!    and the room network advances by `dt` through the cached
//!    backward-Euler solver (sparse CSR once the room is large enough).
//! 2. **Rack phase (parallel).** Each rack reads its cold-aisle
//!    temperature as the inlet boundary and its [`Fleet`] advances by
//!    `dt` — racks are sharded across scoped workers exactly like
//!    [`ShardedBatchSolver`](leakctl_thermal::ShardedBatchSolver)
//!    shards lanes within one rack, and since racks only interact
//!    through the (serial) air phase, the room trajectory is
//!    **bit-identical for any thread count** (`LEAKCTL_THREADS`).
//!
//! CRAH cooling work is accounted through a chilled-water COP model
//! (`COP(T) = 0.0068·T² + 0.0008·T + 0.458`, the HP Utility Data
//! Center model widely used in thermal-aware scheduling studies), so
//! raising the supply set-point trades leakage against cooling energy —
//! the room-scale version of the paper's Fig. 3 trade-off.

use leakctl_platform::{FanFault, ServerConfig};
use leakctl_thermal::{RoomAirModel, RoomAirSpec, ShardPlan};
use leakctl_units::{AirFlow, Celsius, Joules, Rpm, SimDuration, Utilization, Watts};

use crate::control::{ControlAction, RoomController, RoomObservation, SupplyPreview};
use crate::error::{CoreError, PlacementError, RoomError};
use crate::fleet::{run_sharded, Fleet, FleetCheckpoint};
use crate::schedule::PlacementAction;

/// Scenario builder for a [`Room`]: floor-grid geometry, CRAH
/// placement, per-rack server fleets and the air-side couplings.
///
/// The floor is a `rows × racks_per_row` grid of racks. CRAH units sit
/// along the wall in front of row 0; each rack's share of the
/// under-floor airflow decays with its distance to the nearest CRAH
/// (`1 / (1 + d / tile_decay)`, normalized), so far corners of the
/// room run warmer — the coarse-grid stand-in for plenum pressure
/// distribution.
#[derive(Debug, Clone)]
pub struct RoomConfig {
    /// Rack rows on the floor.
    pub rows: usize,
    /// Racks per row.
    pub racks_per_row: usize,
    /// Servers per rack.
    pub servers_per_rack: usize,
    /// Configuration shared by every server.
    pub server: ServerConfig,
    /// CRAH units along the row-0 wall (placement shapes tile flows).
    pub crah_units: usize,
    /// CRAH supply (set-point) temperature.
    pub crah_supply: Celsius,
    /// Through-flow each server draws; a rack's tile flow is its
    /// placement-weighted share of `servers × airflow_per_server`.
    pub airflow_per_server: AirFlow,
    /// Hot-aisle recirculation fraction `β ∈ [0, 1)`.
    pub recirculation_fraction: f64,
    /// Distance-decay length (in rack pitches) of the tile-flow split.
    pub tile_decay: f64,
    /// CRAH efficiency curve used for the cooling-energy accounting.
    pub cop_model: CopModel,
    /// Thermal cap the per-rack die *margins* in
    /// [`RoomObservation`] are
    /// measured against (the paper's 85 °C hot-spot limit by default).
    /// Telemetry only — the room never enforces it; controllers and
    /// schedulers spend the margin.
    pub die_limit: Celsius,
    /// Base seed; server `i` of rack `r` derives its sensor streams
    /// from `seed + r·servers_per_rack + i`.
    pub seed: u64,
}

impl RoomConfig {
    /// A room of `rows × racks_per_row` racks of `servers_per_rack`
    /// default servers, with two CRAH units, an 18 °C supply, 120 CFM
    /// per server and 10 % recirculation.
    #[must_use]
    pub fn new(rows: usize, racks_per_row: usize, servers_per_rack: usize) -> Self {
        Self {
            rows,
            racks_per_row,
            servers_per_rack,
            server: ServerConfig::default(),
            crah_units: 2,
            crah_supply: Celsius::new(18.0),
            airflow_per_server: AirFlow::from_cfm(120.0),
            recirculation_fraction: 0.1,
            tile_decay: 6.0,
            cop_model: CopModel::HpChilledWater,
            die_limit: Celsius::new(85.0),
            seed: 42,
        }
    }

    /// Number of racks on the floor.
    #[must_use]
    pub fn racks(&self) -> usize {
        self.rows * self.racks_per_row
    }

    /// Total server count.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.racks() * self.servers_per_rack
    }

    /// Per-rack tile flows: each rack's placement-weighted share of
    /// the room's total airflow (see the type docs for the weighting).
    #[must_use]
    pub fn tile_flows(&self) -> Vec<AirFlow> {
        let total = self.airflow_per_server.value() * self.servers() as f64;
        let mut weights = Vec::with_capacity(self.racks());
        for row in 0..self.rows {
            for col in 0..self.racks_per_row {
                let d = (0..self.crah_units.max(1))
                    .map(|c| {
                        let crah_col = (c as f64 + 0.5) * self.racks_per_row as f64
                            / self.crah_units.max(1) as f64
                            - 0.5;
                        let dx = col as f64 - crah_col;
                        let dy = row as f64 + 1.0;
                        (dx * dx + dy * dy).sqrt()
                    })
                    .fold(f64::INFINITY, f64::min);
                weights.push(1.0 / (1.0 + d / self.tile_decay));
            }
        }
        let sum: f64 = weights.iter().sum();
        weights
            .into_iter()
            .map(|w| AirFlow::new(total * w / sum))
            .collect()
    }

    fn validate(&self) -> Result<(), CoreError> {
        let invalid = |what: &str| CoreError::Invalid {
            what: what.to_owned(),
        };
        if self.rows == 0 || self.racks_per_row == 0 {
            return Err(invalid("room needs at least one rack"));
        }
        if self.servers_per_rack == 0 {
            return Err(invalid("racks need at least one server"));
        }
        if self.crah_units == 0 {
            return Err(invalid("room needs at least one CRAH unit"));
        }
        if !(self.recirculation_fraction >= 0.0 && self.recirculation_fraction < 1.0) {
            return Err(invalid("recirculation fraction must be in [0, 1)"));
        }
        if !(self.airflow_per_server.value() > 0.0 && self.airflow_per_server.value().is_finite()) {
            return Err(invalid("per-server airflow must be positive"));
        }
        if !(self.tile_decay > 0.0 && self.tile_decay.is_finite()) {
            return Err(invalid("tile decay length must be positive"));
        }
        if !self.die_limit.degrees().is_finite() {
            return Err(invalid("die limit must be finite"));
        }
        self.cop_model.validate()?;
        Ok(())
    }
}

/// A pluggable CRAH coefficient-of-performance curve — how efficiently
/// the cooling plant removes heat at a given supply set-point.
///
/// The default is the HP Utility Data Center chilled-water model (see
/// [`crah_cop`]); the other variants let outdoor-temperature-dependent
/// or economizer/free-cooling curves slot into [`RoomConfig`] (and
/// into an MPC's cost model) without touching the room's accounting
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum CopModel {
    /// `COP(T) = 0.0068·T² + 0.0008·T + 0.458`, the HP Utility Data
    /// Center chilled-water curve ([`crah_cop`]).
    #[default]
    HpChilledWater,
    /// A set-point-independent COP (e.g. a free-cooling regime pinned
    /// by outdoor conditions).
    Constant(f64),
    /// An explicit quadratic `a·T² + b·T + c` in the supply
    /// temperature (°C) — the shape chiller data sheets fit; floored
    /// at 0.1 like the built-in curve.
    Quadratic {
        /// Quadratic coefficient.
        a: f64,
        /// Linear coefficient.
        b: f64,
        /// Constant term.
        c: f64,
    },
}

impl CopModel {
    /// The coefficient of performance at a supply temperature (always
    /// ≥ 0.1, so cooling energy stays finite and positive).
    #[must_use]
    pub fn cop(&self, supply: Celsius) -> f64 {
        let t = supply.degrees();
        let raw = match *self {
            Self::HpChilledWater => return crah_cop(supply),
            Self::Constant(cop) => cop,
            Self::Quadratic { a, b, c } => a * t * t + b * t + c,
        };
        raw.max(0.1)
    }

    fn validate(&self) -> Result<(), CoreError> {
        let ok = match *self {
            Self::HpChilledWater => true,
            Self::Constant(cop) => cop.is_finite() && cop > 0.0,
            Self::Quadratic { a, b, c } => a.is_finite() && b.is_finite() && c.is_finite(),
        };
        if ok {
            Ok(())
        } else {
            Err(CoreError::Invalid {
                what: "COP model parameters must be finite and positive".to_owned(),
            })
        }
    }
}

/// Chilled-water CRAH coefficient of performance at a supply
/// temperature: `COP(T) = 0.0068·T² + 0.0008·T + 0.458` (HP Utility
/// Data Center model). Higher set-points cool more efficiently — the
/// counterweight to leakage in the room-scale energy balance.
#[must_use]
pub fn crah_cop(supply: Celsius) -> f64 {
    let t = supply.degrees();
    (0.0068 * t * t + 0.0008 * t + 0.458).max(0.1)
}

/// A machine room: one [`Fleet`] per rack, coupled through a
/// [`RoomAirModel`], stepped with racks sharded across worker threads.
///
/// # Example
///
/// ```
/// use leakctl::room::{Room, RoomConfig};
/// use leakctl_units::{SimDuration, Utilization};
///
/// # fn main() -> Result<(), leakctl::CoreError> {
/// let mut room = Room::new(RoomConfig::new(1, 2, 4))?;
/// for _ in 0..60 {
///     room.step(SimDuration::from_secs(1), Utilization::FULL)?;
/// }
/// // Hot aisles run above the 18 °C supply once the racks heat up.
/// assert!(room.hot_aisle_temperature(0).degrees() > 18.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Room {
    fleets: Vec<Fleet>,
    air: RoomAirModel,
    /// Cross-rack work partition (racks per worker).
    plan: ShardPlan,
    crah_energy: Joules,
    accounted: SimDuration,
    servers_per_rack: usize,
    cop_model: CopModel,
    die_limit: Celsius,
    /// Mean activity that ran over the most recent step (surfaced to
    /// controllers through [`RoomObservation::activity`]).
    last_activity: Utilization,
    /// Resident per-rack commanded activity — the workload placement.
    /// Every stepping entry point records its command here;
    /// [`Room::step_placed`] re-runs it unchanged, so a scheduler's
    /// [`PlacementAction`] keeps driving the floor between decisions.
    placement: Vec<Utilization>,
    /// Resident per-rack power budgets (`None`: unbudgeted). A
    /// budgeted rack whose measured power exceeds its budget has its
    /// commanded activity throttled proportionally for the next step.
    budgets: Vec<Option<Watts>>,
    /// Per-rack activity that actually ran over the most recent step
    /// (budget throttling included) — the observation read path.
    last_rack_activity: Vec<Utilization>,
    /// Per-step scratch: rack activities / inlets (no per-step allocs).
    activities: Vec<Utilization>,
    inlets: Vec<Celsius>,
}

impl Room {
    /// Builds the room with the environment's thread plan
    /// (`LEAKCTL_THREADS`, else the machine) for cross-rack sharding.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for an inconsistent config and
    /// propagates construction failures.
    pub fn new(config: RoomConfig) -> Result<Self, CoreError> {
        Self::with_plan(config, ShardPlan::from_env())
    }

    /// As [`Room::new`] with an explicit cross-rack thread plan — a
    /// pure performance knob: the room trajectory is bit-identical for
    /// any plan (racks only interact through the serial air phase).
    ///
    /// # Errors
    ///
    /// As [`Room::new`].
    pub fn with_plan(config: RoomConfig, plan: ShardPlan) -> Result<Self, CoreError> {
        config.validate()?;
        let racks = config.racks();
        let spr = config.servers_per_rack;
        // Each rack is a whole shard's worth of work: shard down to
        // single racks. Within-rack sharding is disabled (plan of 1) —
        // the room parallelizes across racks instead, and fleet
        // trajectories are plan-independent, so this only moves work.
        let plan = plan.with_min_lanes_per_shard(1);
        let rack_configs = vec![config.server.clone(); spr];
        let fleets = (0..racks)
            .map(|r| {
                Fleet::with_plan(
                    &rack_configs,
                    0.0,
                    config.seed.wrapping_add((r * spr) as u64),
                    ShardPlan::new(1),
                )
            })
            .collect::<Result<Vec<Fleet>, CoreError>>()?;
        let spec = RoomAirSpec::with_tile_flows(
            config.crah_supply,
            config.tile_flows(),
            config.recirculation_fraction,
        );
        let air = RoomAirModel::new(spec).map_err(leakctl_platform::PlatformError::from)?;
        Ok(Self {
            fleets,
            air,
            plan,
            crah_energy: Joules::ZERO,
            accounted: SimDuration::ZERO,
            servers_per_rack: spr,
            cop_model: config.cop_model,
            die_limit: config.die_limit,
            last_activity: Utilization::IDLE,
            placement: vec![Utilization::IDLE; racks],
            budgets: vec![None; racks],
            last_rack_activity: vec![Utilization::IDLE; racks],
            activities: Vec::with_capacity(racks),
            inlets: Vec::with_capacity(racks),
        })
    }

    /// Number of racks.
    #[must_use]
    pub fn racks(&self) -> usize {
        self.fleets.len()
    }

    /// Total server count.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.fleets.len() * self.servers_per_rack
    }

    /// Rack `rack`'s fleet (read side; per-server ground truth goes
    /// through [`Fleet::server`] on the mutable accessor).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range rack.
    #[must_use]
    pub fn fleet(&self, rack: usize) -> &Fleet {
        &self.fleets[rack]
    }

    /// Mutable access to rack `rack`'s fleet (e.g. to attach
    /// controllers or read synced per-server state).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range rack.
    #[must_use]
    pub fn fleet_mut(&mut self, rack: usize) -> &mut Fleet {
        &mut self.fleets[rack]
    }

    /// The room air network (read side).
    #[must_use]
    pub fn air(&self) -> &RoomAirModel {
        &self.air
    }

    /// Derates the room's CRAH capacity: `1.0` is a healthy plant,
    /// `0.0` a full outage (return air recirculates to the plenum
    /// uncooled; see [`RoomAirModel::set_crah_capacity`]). This is the
    /// room-scale fault-injection knob — the scenario harness drives it
    /// to script CRAH failures and recoveries.
    ///
    /// # Errors
    ///
    /// Returns [`RoomError::InvalidFault`] for a capacity outside
    /// `[0, 1]`.
    pub fn set_crah_capacity(&mut self, capacity: f64) -> Result<(), RoomError> {
        if !(capacity.is_finite() && (0.0..=1.0).contains(&capacity)) {
            return Err(RoomError::InvalidFault {
                what: "CRAH capacity must be in [0, 1]",
            });
        }
        self.air.set_crah_capacity(capacity).map_err(RoomError::Air)
    }

    /// The current CRAH capacity factor (`1.0` healthy).
    #[must_use]
    pub fn crah_capacity(&self) -> f64 {
        self.air.crah_capacity()
    }

    /// Blocks a fraction of rack `rack`'s perforated tile (`0.0` clear,
    /// `1.0` fully obstructed). The commanded tile flow is remembered,
    /// so clearing the blockage restores the exact pre-fault flow (see
    /// [`RoomAirModel::set_tile_blockage`]).
    ///
    /// # Errors
    ///
    /// Returns [`RoomError::RackOutOfRange`] or
    /// [`RoomError::InvalidFault`] for a blockage outside `[0, 1]`.
    pub fn set_tile_blockage(&mut self, rack: usize, blockage: f64) -> Result<(), RoomError> {
        if rack >= self.fleets.len() {
            return Err(RoomError::RackOutOfRange {
                rack,
                racks: self.fleets.len(),
            });
        }
        if !(blockage.is_finite() && (0.0..=1.0).contains(&blockage)) {
            return Err(RoomError::InvalidFault {
                what: "tile blockage must be in [0, 1]",
            });
        }
        self.air
            .set_tile_blockage(rack, blockage)
            .map_err(RoomError::Air)
    }

    /// Rack `rack`'s current tile-blockage fraction.
    ///
    /// # Errors
    ///
    /// Returns [`RoomError::RackOutOfRange`].
    pub fn tile_blockage(&self, rack: usize) -> Result<f64, RoomError> {
        self.air
            .tile_blockage(rack)
            .map_err(|_| RoomError::RackOutOfRange {
                rack,
                racks: self.fleets.len(),
            })
    }

    /// Injects (or clears, with [`FanFault::None`]) a fan-bank fault on
    /// server `server` of rack `rack` (see [`Fleet::inject_fan_fault`]).
    ///
    /// # Errors
    ///
    /// Returns [`RoomError::RackOutOfRange`] /
    /// [`RoomError::ServerOutOfRange`] for bad indices and
    /// [`RoomError::InvalidFault`] for a degraded flow scale outside
    /// `[0, 1]`.
    pub fn inject_fan_fault(
        &mut self,
        rack: usize,
        server: usize,
        fault: FanFault,
    ) -> Result<(), RoomError> {
        if rack >= self.fleets.len() {
            return Err(RoomError::RackOutOfRange {
                rack,
                racks: self.fleets.len(),
            });
        }
        if server >= self.servers_per_rack {
            return Err(RoomError::ServerOutOfRange {
                server,
                servers: self.servers_per_rack,
            });
        }
        if let FanFault::Degraded { flow_scale } = fault {
            if !(flow_scale.is_finite() && (0.0..=1.0).contains(&flow_scale)) {
                return Err(RoomError::InvalidFault {
                    what: "degraded fan flow scale must be in [0, 1]",
                });
            }
        }
        self.fleets[rack]
            .inject_fan_fault(server, fault)
            .map_err(|_| RoomError::InvalidFault {
                what: "fan fault rejected by the fleet",
            })
    }

    /// The fan fault currently injected on server `server` of rack
    /// `rack`.
    ///
    /// # Errors
    ///
    /// Returns [`RoomError::RackOutOfRange`] /
    /// [`RoomError::ServerOutOfRange`] for bad indices.
    pub fn fan_fault(&self, rack: usize, server: usize) -> Result<FanFault, RoomError> {
        if rack >= self.fleets.len() {
            return Err(RoomError::RackOutOfRange {
                rack,
                racks: self.fleets.len(),
            });
        }
        self.fleets[rack]
            .fan_fault(server)
            .ok_or(RoomError::ServerOutOfRange {
                server,
                servers: self.servers_per_rack,
            })
    }

    /// Snapshots the full room — every rack's fleet (thermal state,
    /// fan banks with injected faults, service processors, sensor RNG
    /// streams), the air-side network with its boundary conditions and
    /// fault state, and the energy/time accounting. Packed shard
    /// blocks are synced first, so the snapshot is exact for any
    /// residency or thread plan.
    pub fn checkpoint(&mut self) -> RoomCheckpoint {
        RoomCheckpoint {
            fleets: self.fleets.iter_mut().map(Fleet::checkpoint).collect(),
            air: self.air.clone(),
            crah_energy: self.crah_energy,
            accounted: self.accounted,
            last_activity: self.last_activity,
            placement: self.placement.clone(),
            budgets: self.budgets.clone(),
            last_rack_activity: self.last_rack_activity.clone(),
        }
    }

    /// Restores a [`Room::checkpoint`] — into this room or any room
    /// built from the same config under any thread plan. The resumed
    /// trajectory is bit-identical to the uninterrupted one. The whole
    /// checkpoint is validated before anything is touched, so a
    /// rejected restore never leaves the room half-restored.
    ///
    /// # Errors
    ///
    /// Returns [`RoomError::CheckpointMismatch`] when rack/server
    /// counts or thermal topologies differ.
    pub fn restore(&mut self, checkpoint: &RoomCheckpoint) -> Result<(), RoomError> {
        self.can_restore(checkpoint)?;
        for (fleet, snap) in self.fleets.iter_mut().zip(&checkpoint.fleets) {
            fleet
                .restore(snap)
                .map_err(|e| RoomError::CheckpointMismatch {
                    what: e.to_string(),
                })?;
        }
        self.air = checkpoint.air.clone();
        self.crah_energy = checkpoint.crah_energy;
        self.accounted = checkpoint.accounted;
        self.last_activity = checkpoint.last_activity;
        self.placement.clone_from(&checkpoint.placement);
        self.budgets.clone_from(&checkpoint.budgets);
        self.last_rack_activity
            .clone_from(&checkpoint.last_rack_activity);
        Ok(())
    }

    /// Checks that `checkpoint` could be restored into this room without
    /// committing anything — the validation half of [`Room::restore`],
    /// exposed so a building can vet every room's checkpoint before
    /// touching any of them (all-or-nothing building restores).
    ///
    /// # Errors
    ///
    /// Returns [`RoomError::CheckpointMismatch`] when rack/server
    /// counts or thermal topologies differ.
    pub fn can_restore(&self, checkpoint: &RoomCheckpoint) -> Result<(), RoomError> {
        if checkpoint.fleets.len() != self.fleets.len() {
            return Err(RoomError::CheckpointMismatch {
                what: format!(
                    "checkpoint holds {} racks, room has {}",
                    checkpoint.fleets.len(),
                    self.fleets.len()
                ),
            });
        }
        if checkpoint.air.racks() != self.air.racks() {
            return Err(RoomError::CheckpointMismatch {
                what: "air-side rack count differs".to_owned(),
            });
        }
        if checkpoint.placement.len() != self.fleets.len()
            || checkpoint.budgets.len() != self.fleets.len()
            || checkpoint.last_rack_activity.len() != self.fleets.len()
        {
            return Err(RoomError::CheckpointMismatch {
                what: "placement rack count differs".to_owned(),
            });
        }
        for (r, (fleet, snap)) in self.fleets.iter().zip(&checkpoint.fleets).enumerate() {
            fleet
                .can_restore(snap)
                .map_err(|e| RoomError::CheckpointMismatch {
                    what: format!("rack {r}: {e}"),
                })?;
        }
        Ok(())
    }

    fn command_fans(&mut self, rpm: Rpm) {
        for fleet in &mut self.fleets {
            fleet.command_all(rpm);
        }
    }

    /// Validates and atomically applies a typed room command — the one
    /// write path controllers (and the future `leakctld` set-point
    /// endpoint) drive. The whole action is validated before anything
    /// is touched, so a rejected action never leaves the room
    /// half-applied.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for a non-finite supply, a
    /// tile-flow list whose length does not match the rack count, or a
    /// non-positive/non-finite tile flow.
    pub fn apply(&mut self, action: &ControlAction) -> Result<(), CoreError> {
        let invalid = |what: &str| CoreError::Invalid {
            what: what.to_owned(),
        };
        // ---- validate everything up front (atomicity).
        if let Some(supply) = action.supply {
            if !supply.degrees().is_finite() {
                return Err(invalid("supply set-point must be finite"));
            }
        }
        if let Some(flows) = &action.tile_flows {
            if flows.len() != self.fleets.len() {
                return Err(invalid("one tile flow per rack required"));
            }
            if flows
                .iter()
                .any(|q| !(q.value() > 0.0 && q.value().is_finite()))
            {
                return Err(invalid("tile flows must be positive and finite"));
            }
        }
        if let Some(rpm) = action.fan_floor {
            if !(rpm.value().is_finite() && rpm.value() >= 0.0) {
                return Err(invalid("fan floor must be finite and non-negative"));
            }
        }
        // ---- commit (every call below is now infallible by
        // construction).
        if let Some(supply) = action.supply {
            self.air
                .set_supply(supply)
                .map_err(leakctl_platform::PlatformError::from)?;
        }
        if let Some(flows) = &action.tile_flows {
            for (rack, &flow) in flows.iter().enumerate() {
                self.air
                    .set_tile_flow(rack, flow)
                    .map_err(leakctl_platform::PlatformError::from)?;
            }
        }
        if let Some(rpm) = action.fan_floor {
            self.command_fans(rpm);
        }
        Ok(())
    }

    /// Fills `obs` with a read-only room snapshot — allocation-free
    /// once the snapshot's vectors have reached capacity, and `&self`
    /// throughout (die temperatures come straight from the packed
    /// shard blocks), so telemetry pollers never contend for
    /// `&mut Room`.
    pub fn observe_into(&self, obs: &mut RoomObservation) {
        let supply = self.air.supply_temperature();
        let cop = self.cop_model.cop(supply);
        obs.time = self.accounted;
        obs.supply = supply;
        obs.return_temp = self.air.return_temperature();
        obs.recirculation = self.air.recirculation();
        obs.activity = self.last_activity;
        obs.it_power = self.total_power();
        obs.cooling_power = Watts::new(self.air.crah_heat_removed().value().max(0.0) / cop);
        obs.cop = cop;
        obs.servers_per_rack = self.servers_per_rack;
        let racks = self.fleets.len();
        obs.cold_aisles.clear();
        obs.cold_aisles
            .extend((0..racks).map(|r| self.air.cold_aisle_temperature(r)));
        obs.hot_aisles.clear();
        obs.hot_aisles
            .extend((0..racks).map(|r| self.air.hot_aisle_temperature(r)));
        self.rack_max_die_temperatures(&mut obs.rack_die_max);
        obs.tile_flows.clear();
        // `r < racks` makes the lookup infallible; degrade to zero flow
        // rather than aborting a telemetry poll if that ever changes.
        obs.tile_flows
            .extend((0..racks).map(|r| self.air.tile_flow(r).unwrap_or(AirFlow::ZERO)));
        obs.rack_it_power.clear();
        obs.rack_it_power
            .extend(self.fleets.iter().map(Fleet::total_power));
        obs.rack_activity.clear();
        obs.rack_activity
            .extend_from_slice(&self.last_rack_activity);
        obs.die_limit = self.die_limit;
        obs.rack_die_margin.clear();
        obs.rack_die_margin.extend(
            obs.rack_die_max
                .iter()
                .map(|&die| Celsius::new(self.die_limit.degrees() - die.degrees())),
        );
    }

    /// A freshly allocated room snapshot (see [`Room::observe_into`]
    /// for the reusable form).
    #[must_use]
    pub fn observe(&self) -> RoomObservation {
        let mut obs = RoomObservation::new();
        self.observe_into(&mut obs);
        obs
    }

    /// Previews the steady per-rack cold-aisle temperatures under a
    /// candidate supply set-point without disturbing the live
    /// trajectory (see
    /// [`RoomAirModel::preview_supply`]); returns the previewed CRAH
    /// return temperature.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for a non-finite candidate.
    pub fn preview_supply(
        &mut self,
        supply: Celsius,
        cold_aisles: &mut Vec<Celsius>,
    ) -> Result<Celsius, CoreError> {
        self.air
            .preview_supply(supply, cold_aisles)
            .map_err(|e| CoreError::Platform(e.into()))
    }

    /// Runs the closed control loop for `steps` steps of `dt`: every
    /// [`RoomController::decision_period`] (and at time zero) the
    /// controller observes a fresh snapshot — with the live air model
    /// as its what-if oracle — and its action is applied atomically
    /// before the room advances. `schedule` maps the step index to the
    /// room-wide activity level.
    ///
    /// The trajectory is bit-identical for any thread plan: decisions
    /// happen in the serial section between steps, and previews never
    /// touch the live state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for a zero `dt` and propagates
    /// apply/step failures.
    pub fn run_controlled(
        &mut self,
        controller: &mut dyn RoomController,
        dt: SimDuration,
        steps: u64,
        mut schedule: impl FnMut(u64) -> Utilization,
    ) -> Result<ControlStats, CoreError> {
        if dt.is_zero() {
            return Err(CoreError::Invalid {
                what: "controlled runs need a positive step".to_owned(),
            });
        }
        let period = controller.decision_period();
        let mut stats = ControlStats::default();
        let mut obs = RoomObservation::new();
        let mut since = period; // decide immediately at t = 0
        for step in 0..steps {
            if since >= period {
                since = SimDuration::ZERO;
                let action = self.decide(controller, &mut obs);
                stats.decisions += 1;
                if !action.is_hold() {
                    stats.applied += 1;
                    self.apply(&action)?;
                }
            }
            self.step(dt, schedule(step))?;
            since += dt;
            stats.peak_die = stats.peak_die.max(self.max_die_temperature());
        }
        Ok(stats)
    }

    /// Observes the room into `obs` and consults `controller` with the
    /// live air model as its what-if oracle, returning the (unapplied)
    /// action — the building block [`Room::run_controlled`] is made of,
    /// exposed so scenario runners can keep a decision cadence of their
    /// own (e.g. across checkpoint/restore boundaries) while deciding
    /// exactly like the built-in loop.
    pub fn decide(
        &mut self,
        controller: &mut dyn RoomController,
        obs: &mut RoomObservation,
    ) -> ControlAction {
        self.observe_into(obs);
        let mut preview = RoomSupplyPreview { air: &mut self.air };
        controller.observe(obs, &mut preview)
    }

    /// Validates and atomically applies a typed workload placement —
    /// the write path schedulers drive, the placement-side twin of
    /// [`Room::apply`]. The whole action is validated before anything
    /// is touched, so a rejected placement never leaves the room
    /// half-placed: per-rack utilizations must be finite fractions in
    /// `[0, 1]` with exactly one entry per rack, and any power budgets
    /// must be finite, positive and one per rack.
    ///
    /// The committed placement is *resident*: it keeps driving the
    /// racks on every [`Room::step_placed`] until the next placement
    /// (or a uniform [`Room::step`]) replaces it, and it rides
    /// [`Room::checkpoint`] so a restored room resumes bit-identically.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Placement`] describing the first violation;
    /// nothing is committed on any error.
    pub fn apply_placement(&mut self, action: &PlacementAction) -> Result<(), CoreError> {
        let racks = self.fleets.len();
        // ---- validate everything up front (atomicity).
        if action.utilizations.len() != racks {
            return Err(PlacementError::RackCountMismatch {
                got: action.utilizations.len(),
                racks,
            }
            .into());
        }
        for (rack, &fraction) in action.utilizations.iter().enumerate() {
            if !(fraction.is_finite() && (0.0..=1.0).contains(&fraction)) {
                return Err(PlacementError::InvalidUtilization { rack, fraction }.into());
            }
        }
        if let Some(budgets) = &action.power_budgets {
            if budgets.len() != racks {
                return Err(PlacementError::BudgetCountMismatch {
                    got: budgets.len(),
                    racks,
                }
                .into());
            }
            for (rack, budget) in budgets.iter().enumerate() {
                if let Some(watts) = budget {
                    if !(watts.value().is_finite() && watts.value() > 0.0) {
                        return Err(PlacementError::InvalidBudget {
                            rack,
                            watts: watts.value(),
                        }
                        .into());
                    }
                }
            }
        }
        // ---- commit (infallible by construction).
        for (slot, &fraction) in self.placement.iter_mut().zip(&action.utilizations) {
            *slot = Utilization::saturating_from_fraction(fraction);
        }
        if let Some(budgets) = &action.power_budgets {
            self.budgets.clone_from(budgets);
        }
        Ok(())
    }

    /// The resident per-rack placement the next [`Room::step_placed`]
    /// will run (commanded values, before any budget throttling).
    #[must_use]
    pub fn placement(&self) -> &[Utilization] {
        &self.placement
    }

    /// The resident per-rack power budgets (`None`: unbudgeted).
    #[must_use]
    pub fn power_budgets(&self) -> &[Option<Watts>] {
        &self.budgets
    }

    /// The thermal cap per-rack die margins are measured against (see
    /// [`RoomConfig::die_limit`]).
    #[must_use]
    pub fn die_limit(&self) -> Celsius {
        self.die_limit
    }

    /// Advances the whole room by `dt` with every rack at the same
    /// activity level. The uniform command replaces the resident
    /// placement; resident power budgets still throttle.
    ///
    /// # Errors
    ///
    /// Propagates platform and solver failures.
    pub fn step(&mut self, dt: SimDuration, activity: Utilization) -> Result<(), CoreError> {
        self.placement.fill(activity);
        self.step_placed(dt)
    }

    /// Advances the room by `dt` on the resident placement — the
    /// stepping half of the [`Room::apply_placement`] →
    /// [`Room::step_placed`] scheduler loop. Each budgeted rack whose
    /// measured start-of-step power exceeds its budget runs its
    /// commanded activity scaled by `budget / power` (a RAPL-style
    /// proportional throttle); the commanded placement itself is left
    /// untouched, so throttling lifts as the rack cools.
    ///
    /// # Errors
    ///
    /// Propagates platform and solver failures.
    pub fn step_placed(&mut self, dt: SimDuration) -> Result<(), CoreError> {
        self.step_placed_limited(dt, Utilization::FULL)
    }

    /// As [`Room::step_placed`] with every rack's activity additionally
    /// clamped to `limit` — the hook a building-level power cap uses to
    /// shed a whole room without disturbing its resident placement.
    ///
    /// # Errors
    ///
    /// Propagates platform and solver failures.
    pub fn step_placed_limited(
        &mut self,
        dt: SimDuration,
        limit: Utilization,
    ) -> Result<(), CoreError> {
        let mut activities = std::mem::take(&mut self.activities);
        activities.clear();
        activities.extend(
            self.placement
                .iter()
                .zip(&self.budgets)
                .zip(&self.fleets)
                .map(|((&commanded, budget), fleet)| {
                    let commanded = commanded.min(limit);
                    match budget {
                        Some(budget) => {
                            let power = fleet.total_power().value();
                            if power > budget.value() && power > 0.0 {
                                Utilization::saturating_from_fraction(
                                    commanded.as_fraction() * budget.value() / power,
                                )
                            } else {
                                commanded
                            }
                        }
                        None => commanded,
                    }
                }),
        );
        let result = self.advance(dt, &activities);
        self.activities = activities;
        result
    }

    /// Advances the room by `dt` with per-rack activity levels.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Placement`] when `activities` does not have
    /// one entry per rack, and propagates platform/solver failures.
    #[deprecated(
        since = "0.2.0",
        note = "build a validated `PlacementAction` and drive \
                `Room::apply_placement` + `Room::step_placed` instead"
    )]
    pub fn step_racks(
        &mut self,
        dt: SimDuration,
        activities: &[Utilization],
    ) -> Result<(), CoreError> {
        let action = PlacementAction::from_utilizations(activities);
        self.apply_placement(&action)?;
        self.step_placed(dt)
    }

    /// One operator-split step: serial air phase, then the rack phase
    /// sharded across scoped workers.
    fn advance(&mut self, dt: SimDuration, activities: &[Utilization]) -> Result<(), CoreError> {
        if dt.is_zero() {
            return Ok(());
        }
        // ---- air phase (serial): inject start-of-step rack powers,
        // advance the room network.
        for (r, fleet) in self.fleets.iter().enumerate() {
            self.air
                .set_rack_power(r, fleet.total_power())
                .map_err(leakctl_platform::PlatformError::from)?;
        }
        self.air
            .step(dt)
            .map_err(leakctl_platform::PlatformError::from)?;

        // ---- rack phase (parallel): cold-aisle temperature → inlet
        // boundary, one fleet step per rack, racks sharded across
        // workers. Racks are independent within the step, so any
        // partition is bit-identical.
        self.inlets.clear();
        self.inlets
            .extend((0..self.fleets.len()).map(|r| self.air.cold_aisle_temperature(r)));
        let ranges = self.plan.ranges(self.fleets.len());
        let inlets = &self.inlets;
        run_sharded(&mut self.fleets, &ranges, |chunk, range| {
            for ((fleet, &inlet), &activity) in chunk
                .iter_mut()
                .zip(&inlets[range.clone()])
                .zip(&activities[range])
            {
                fleet.step_with_inlet(dt, activity, inlet)?;
            }
            Ok::<(), CoreError>(())
        })?;

        // ---- CRAH cooling work over the step, through the COP at the
        // current set-point.
        let removed = self.air.crah_heat_removed().value().max(0.0);
        let cop = self.cop_model.cop(self.air.supply_temperature());
        self.crah_energy += Watts::new(removed / cop) * dt;
        self.accounted += dt;
        let mean = activities.iter().map(|a| a.as_fraction()).sum::<f64>()
            / activities.len().max(1) as f64;
        self.last_activity = Utilization::saturating_from_fraction(mean);
        self.last_rack_activity.clear();
        self.last_rack_activity.extend_from_slice(activities);
        Ok(())
    }

    /// Rack `rack`'s cold-aisle (inlet) temperature.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range rack.
    #[must_use]
    pub fn cold_aisle_temperature(&self, rack: usize) -> Celsius {
        self.air.cold_aisle_temperature(rack)
    }

    /// Rack `rack`'s hot-aisle temperature.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range rack.
    #[must_use]
    pub fn hot_aisle_temperature(&self, rack: usize) -> Celsius {
        self.air.hot_aisle_temperature(rack)
    }

    /// The mixed return temperature at the CRAH intake.
    #[must_use]
    pub fn return_temperature(&self) -> Celsius {
        self.air.return_temperature()
    }

    /// Total IT power (every fleet, rack order).
    #[must_use]
    pub fn total_power(&self) -> Watts {
        self.fleets.iter().map(Fleet::total_power).sum()
    }

    /// Accumulated IT (server + fan) energy since construction.
    #[must_use]
    pub fn it_energy(&self) -> Joules {
        self.fleets.iter().map(Fleet::total_energy).sum()
    }

    /// Accumulated CRAH cooling energy (heat removed over COP).
    #[must_use]
    pub fn cooling_energy(&self) -> Joules {
        self.crah_energy
    }

    /// Total room energy: IT plus CRAH cooling work.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.it_energy() + self.crah_energy
    }

    /// Time the room has been stepped since construction or the last
    /// [`Room::reset_accounting`].
    #[must_use]
    pub fn accounted_time(&self) -> SimDuration {
        self.accounted
    }

    /// Resets all energy accounting — per-server accumulators, the
    /// CRAH cooling energy and the accounted clock (e.g. after a
    /// warm-up phase). Thermal state is untouched.
    pub fn reset_accounting(&mut self) {
        for fleet in &mut self.fleets {
            fleet.reset_accounting();
        }
        self.crah_energy = Joules::ZERO;
        self.accounted = SimDuration::ZERO;
    }

    /// The hottest die anywhere in the room (packed-block read path;
    /// no unpacks).
    #[must_use]
    pub fn max_die_temperature(&self) -> Celsius {
        self.fleets
            .iter()
            .map(Fleet::max_die_temperature)
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }

    /// Every rack's hottest die temperature, appended into `out`
    /// (cleared first) — the controller-loop read path: like
    /// [`Fleet::die_temps_view`] it reads straight from the packed
    /// shard blocks, with no state unpacks and no residency eviction.
    pub fn rack_max_die_temperatures(&self, out: &mut Vec<Celsius>) {
        out.clear();
        out.extend(self.fleets.iter().map(Fleet::max_die_temperature));
    }

    /// The rack whose hottest die is highest right now — the hot spot
    /// a tile-flow or set-point controller would act on. Total order,
    /// so a non-finite die temperature (a diverged solve under an
    /// injected fault) picks a rack instead of panicking.
    #[must_use]
    pub fn hottest_rack(&self) -> usize {
        (0..self.fleets.len())
            .max_by(|&a, &b| {
                self.fleets[a]
                    .max_die_temperature()
                    .degrees()
                    .total_cmp(&self.fleets[b].max_die_temperature().degrees())
            })
            .unwrap_or(0)
    }
}

/// A full-state snapshot of a [`Room`] (see [`Room::checkpoint`]):
/// every rack's fleet in original index order, the air-side network
/// (boundary conditions and fault state included) and the energy/time
/// accounting. Restoring resumes the trajectory bit-identically for
/// any thread plan.
#[derive(Debug, Clone)]
pub struct RoomCheckpoint {
    fleets: Vec<FleetCheckpoint>,
    air: RoomAirModel,
    crah_energy: Joules,
    accounted: SimDuration,
    last_activity: Utilization,
    placement: Vec<Utilization>,
    budgets: Vec<Option<Watts>>,
    last_rack_activity: Vec<Utilization>,
}

impl RoomCheckpoint {
    /// Number of racks captured.
    #[must_use]
    pub fn racks(&self) -> usize {
        self.fleets.len()
    }

    /// Simulated time accounted at the capture point.
    #[must_use]
    pub fn accounted_time(&self) -> SimDuration {
        self.accounted
    }
}

/// Counters from a [`Room::run_controlled`] run: how often the
/// controller was consulted, how often it commanded a change (a
/// well-settled loop holds most of the time), and — for scenario runs
/// — how the loop rode out injected faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlStats {
    /// Controller consultations (one per decision period plus `t = 0`).
    pub decisions: u64,
    /// Decisions that produced a non-hold action.
    pub applied: u64,
    /// Hottest die seen after any step of the run.
    pub peak_die: Celsius,
    /// Simulated time the room's hottest die spent above the thermal
    /// cap. [`Room::run_controlled`] has no cap and leaves this zero;
    /// scenario runners fill it in.
    pub cap_violation_time: SimDuration,
    /// Time from the last fault clearing until the hottest die came
    /// back under the cap (`None`: no fault, or never recovered).
    pub recovery_time: Option<SimDuration>,
    /// Extra total energy relative to a fault-free reference run of
    /// the same scenario (`None` outside scenario runs).
    pub energy_overhead: Option<Joules>,
}

impl Default for ControlStats {
    fn default() -> Self {
        Self {
            decisions: 0,
            applied: 0,
            peak_die: Celsius::new(f64::NEG_INFINITY),
            cap_violation_time: SimDuration::ZERO,
            recovery_time: None,
            energy_overhead: None,
        }
    }
}

/// [`SupplyPreview`] over the live room air model — the what-if oracle
/// [`Room::run_controlled`] hands its controller. Previews solve into a
/// scratch state and restore the boundary afterwards, so the live
/// trajectory is untouched bit-for-bit.
struct RoomSupplyPreview<'a> {
    air: &'a mut RoomAirModel,
}

impl SupplyPreview for RoomSupplyPreview<'_> {
    fn preview_supply(
        &mut self,
        supply: Celsius,
        cold_aisles: &mut Vec<Celsius>,
    ) -> Result<Celsius, CoreError> {
        self.air
            .preview_supply(supply, cold_aisles)
            .map_err(|e| CoreError::Platform(e.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RoomConfig {
        let mut config = RoomConfig::new(1, 2, 3);
        config.crah_supply = Celsius::new(20.0);
        config.recirculation_fraction = 0.2;
        config
    }

    #[test]
    fn construction_validated() {
        assert!(Room::new(RoomConfig::new(0, 2, 2)).is_err());
        assert!(Room::new(RoomConfig::new(1, 0, 2)).is_err());
        assert!(Room::new(RoomConfig::new(1, 2, 0)).is_err());
        let mut bad = RoomConfig::new(1, 2, 2);
        bad.recirculation_fraction = 1.0;
        assert!(Room::new(bad).is_err());
        let mut bad = RoomConfig::new(1, 2, 2);
        bad.crah_units = 0;
        assert!(Room::new(bad).is_err());
        let mut bad = RoomConfig::new(1, 2, 2);
        bad.airflow_per_server = AirFlow::ZERO;
        assert!(Room::new(bad).is_err());

        let room = Room::new(small()).unwrap();
        assert_eq!(room.racks(), 2);
        assert_eq!(room.servers(), 6);
        assert_eq!(room.air().racks(), 2);
    }

    #[test]
    fn tile_flows_decay_with_crah_distance() {
        let mut config = RoomConfig::new(3, 4, 8);
        config.crah_units = 1;
        let flows = config.tile_flows();
        assert_eq!(flows.len(), 12);
        let total: f64 = flows.iter().map(|q| q.value()).sum();
        let want = config.airflow_per_server.value() * config.servers() as f64;
        assert!((total - want).abs() < 1e-9 * want, "split preserves total");
        // Row 0 (next to the CRAH wall) out-draws row 2.
        assert!(flows[0].value() > flows[8].value());
        // Within a row, the tile under the CRAH out-draws the corner.
        assert!(flows[1].value() > flows[3].value());
    }

    fn pin_fans(room: &mut Room, rpm: f64) {
        room.apply(&ControlAction::hold().with_fan_floor(Rpm::new(rpm)))
            .unwrap();
    }

    #[test]
    fn room_warms_and_conserves_energy_at_steady_state() {
        let mut room = Room::new(small()).unwrap();
        pin_fans(&mut room, 3000.0);
        let dt = SimDuration::from_secs(1);
        for _ in 0..3_600 {
            room.step(dt, Utilization::FULL).unwrap();
        }
        // Hot aisle above cold aisle above supply.
        for r in 0..room.racks() {
            assert!(room.hot_aisle_temperature(r) > room.cold_aisle_temperature(r));
            assert!(room.cold_aisle_temperature(r).degrees() > 20.0);
        }
        // At (quasi-)steady state the CRAH extracts the IT dissipation.
        let removed = room.air().crah_heat_removed().value();
        let it = room.total_power().value();
        assert!(
            ((removed - it) / it).abs() < 1e-6,
            "CRAH {removed} W vs IT {it} W"
        );
        // Energy accounting: IT + cooling, cooling > 0, time tracked.
        assert!(room.cooling_energy() > Joules::ZERO);
        assert_eq!(
            room.total_energy(),
            room.it_energy() + room.cooling_energy()
        );
        assert_eq!(room.accounted_time(), SimDuration::from_secs(3_600));
        // Accounting resets cleanly (physics untouched).
        let die = room.max_die_temperature();
        room.reset_accounting();
        assert_eq!(room.total_energy(), Joules::ZERO);
        assert_eq!(room.accounted_time(), SimDuration::ZERO);
        assert_eq!(room.max_die_temperature(), die);
    }

    #[test]
    fn warmer_supply_trades_cooling_for_leakage() {
        let run = |supply: f64| {
            let mut config = small();
            config.crah_supply = Celsius::new(supply);
            let mut room = Room::with_plan(config, ShardPlan::new(1)).unwrap();
            pin_fans(&mut room, 3000.0);
            for _ in 0..2_400 {
                room.step(SimDuration::from_secs(1), Utilization::FULL)
                    .unwrap();
            }
            room
        };
        let cold = run(16.0);
        let warm = run(27.0);
        // Warmer supply → hotter dies → more leakage → more IT energy…
        assert!(warm.max_die_temperature() > cold.max_die_temperature());
        assert!(warm.it_energy() > cold.it_energy());
        // …but the CRAH works at a much better COP.
        assert!(crah_cop(Celsius::new(27.0)) > crah_cop(Celsius::new(16.0)));
        assert!(warm.cooling_energy() < cold.cooling_energy());
    }

    #[test]
    #[allow(deprecated)]
    fn per_rack_activities_shape_the_room() {
        let mut room = Room::with_plan(small(), ShardPlan::new(2)).unwrap();
        assert!(matches!(
            room.step_racks(SimDuration::from_secs(1), &[Utilization::FULL]),
            Err(CoreError::Placement(PlacementError::RackCountMismatch {
                got: 1,
                racks: 2
            }))
        ));
        for _ in 0..1_800 {
            room.step_racks(
                SimDuration::from_secs(1),
                &[Utilization::FULL, Utilization::IDLE],
            )
            .unwrap();
        }
        assert!(room.hot_aisle_temperature(0) > room.hot_aisle_temperature(1));
        assert_eq!(room.hottest_rack(), 0);
        let mut temps = Vec::new();
        room.rack_max_die_temperatures(&mut temps);
        assert_eq!(temps.len(), 2);
        assert!(temps[0] > temps[1]);
    }

    #[test]
    fn trajectory_bit_identical_across_rack_shard_plans() {
        let run = |threads: usize| {
            let mut config = RoomConfig::new(2, 2, 2);
            config.recirculation_fraction = 0.25;
            let mut room = Room::with_plan(config, ShardPlan::new(threads)).unwrap();
            pin_fans(&mut room, 2700.0);
            let dt = SimDuration::from_secs(1);
            for step in 0..200 {
                let act = if step % 60 < 30 {
                    Utilization::FULL
                } else {
                    Utilization::IDLE
                };
                room.step(dt, act).unwrap();
            }
            let aisles: Vec<u64> = (0..room.racks())
                .map(|r| room.cold_aisle_temperature(r).degrees().to_bits())
                .collect();
            (
                room.total_energy(),
                room.max_die_temperature(),
                room.cooling_energy(),
                aisles,
            )
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), reference, "threads {threads}");
        }
    }

    #[test]
    fn apply_validates_atomically() {
        let mut room = Room::new(small()).unwrap();
        let before_supply = room.air().supply_temperature();
        let before_flows: Vec<AirFlow> = (0..room.racks())
            .map(|r| room.air().tile_flow(r).unwrap())
            .collect();

        // A bad tile-flow list rejects the whole action: the (valid)
        // supply half must not land either.
        let bad = ControlAction::hold()
            .with_supply(Celsius::new(24.0))
            .with_tile_flows(vec![AirFlow::from_cfm(100.0)]);
        assert!(matches!(room.apply(&bad), Err(CoreError::Invalid { .. })));
        assert_eq!(room.air().supply_temperature(), before_supply);

        let bad = ControlAction::hold()
            .with_supply(Celsius::new(24.0))
            .with_tile_flows(vec![AirFlow::ZERO, AirFlow::from_cfm(100.0)]);
        assert!(matches!(room.apply(&bad), Err(CoreError::Invalid { .. })));
        assert_eq!(room.air().supply_temperature(), before_supply);
        for (r, &flow) in before_flows.iter().enumerate() {
            assert_eq!(room.air().tile_flow(r).unwrap(), flow);
        }

        assert!(matches!(
            room.apply(&ControlAction::hold().with_supply(Celsius::new(f64::NAN))),
            Err(CoreError::Invalid { .. })
        ));
        assert!(matches!(
            room.apply(&ControlAction::hold().with_fan_floor(Rpm::new(f64::NAN))),
            Err(CoreError::Invalid { .. })
        ));

        // A fully valid action lands as a unit.
        let flows: Vec<AirFlow> = before_flows
            .iter()
            .map(|q| AirFlow::new(q.value()))
            .collect();
        let good = ControlAction::hold()
            .with_supply(Celsius::new(23.0))
            .with_tile_flows(flows)
            .with_fan_floor(Rpm::new(3300.0));
        room.apply(&good).unwrap();
        assert_eq!(room.air().supply_temperature(), Celsius::new(23.0));
        // Hold is a no-op.
        room.apply(&ControlAction::hold()).unwrap();
        assert_eq!(room.air().supply_temperature(), Celsius::new(23.0));
    }

    #[test]
    fn observation_snapshot_matches_room_state() {
        let mut room = Room::new(small()).unwrap();
        for _ in 0..600 {
            room.step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        let mut obs = RoomObservation::new();
        room.observe_into(&mut obs);
        assert_eq!(obs.racks(), room.racks());
        assert_eq!(obs.time, room.accounted_time());
        assert_eq!(obs.supply, room.air().supply_temperature());
        assert_eq!(obs.return_temp, room.return_temperature());
        assert_eq!(obs.activity, Utilization::FULL);
        assert_eq!(obs.it_power, room.total_power());
        assert_eq!(obs.servers_per_rack, 3);
        assert!((obs.recirculation - 0.2).abs() < 1e-12);
        assert!(obs.cop > 0.0 && obs.cooling_power.value() > 0.0);
        let mut dies = Vec::new();
        room.rack_max_die_temperatures(&mut dies);
        assert_eq!(obs.rack_die_max, dies);
        assert_eq!(obs.max_die_temperature(), room.max_die_temperature());
        assert_eq!(obs.hottest_rack(), room.hottest_rack());
        for r in 0..room.racks() {
            assert_eq!(obs.cold_aisles[r], room.cold_aisle_temperature(r));
            assert_eq!(obs.hot_aisles[r], room.hot_aisle_temperature(r));
        }
        // Reusable: a second fill into the same buffers is identical.
        let again = room.observe();
        assert_eq!(again.rack_die_max, obs.rack_die_max);
        assert_eq!(again.cold_aisles, obs.cold_aisles);
    }

    #[test]
    fn pluggable_cop_model_drives_the_accounting() {
        let run = |model: CopModel| {
            let mut config = small();
            config.cop_model = model;
            let mut room = Room::with_plan(config, ShardPlan::new(1)).unwrap();
            for _ in 0..900 {
                room.step(SimDuration::from_secs(1), Utilization::FULL)
                    .unwrap();
            }
            room.cooling_energy()
        };
        let default = run(CopModel::HpChilledWater);
        let quad = run(CopModel::Quadratic {
            a: 0.0068,
            b: 0.0008,
            c: 0.458,
        });
        // The explicit quadratic reproduces the built-in curve…
        assert_eq!(default, quad);
        // …and a flat high-COP plant (free cooling) charges far less
        // than the ~3.2 the chilled-water curve gives at a 20 °C
        // supply.
        let flat = run(CopModel::Constant(10.0));
        assert!(flat < default);

        let mut bad = small();
        bad.cop_model = CopModel::Constant(-1.0);
        assert!(Room::new(bad).is_err());
        let mut bad = small();
        bad.cop_model = CopModel::Quadratic {
            a: f64::NAN,
            b: 0.0,
            c: 1.0,
        };
        assert!(Room::new(bad).is_err());
    }

    #[test]
    fn controlled_run_decides_on_schedule() {
        use crate::control::FixedSupplyController;

        let mut room = Room::new(small()).unwrap();
        let mut ctl = FixedSupplyController::new(Celsius::new(22.0));
        let dt = SimDuration::from_secs(30);
        let stats = room
            .run_controlled(&mut ctl, dt, 8, |_| Utilization::FULL)
            .unwrap();
        // 60 s period at 30 s steps over 4 min: decisions at t = 0,
        // 60, 120, 180 s; only the first commands a change.
        assert_eq!(stats.decisions, 4);
        assert_eq!(stats.applied, 1);
        assert_eq!(room.air().supply_temperature(), Celsius::new(22.0));
        assert_eq!(room.accounted_time(), SimDuration::from_secs(240));
        assert!(matches!(
            room.run_controlled(&mut ctl, SimDuration::ZERO, 1, |_| Utilization::FULL),
            Err(CoreError::Invalid { .. })
        ));
    }

    #[test]
    fn fault_injection_validated_and_reversible() {
        let mut room = Room::new(small()).unwrap();
        pin_fans(&mut room, 3000.0);

        // Bad parameters and indices come back as typed errors.
        assert!(matches!(
            room.set_crah_capacity(1.5),
            Err(RoomError::InvalidFault { .. })
        ));
        assert!(matches!(
            room.set_tile_blockage(99, 0.5),
            Err(RoomError::RackOutOfRange { rack: 99, .. })
        ));
        assert!(matches!(
            room.set_tile_blockage(0, f64::NAN),
            Err(RoomError::InvalidFault { .. })
        ));
        assert!(matches!(
            room.inject_fan_fault(99, 0, FanFault::Stuck),
            Err(RoomError::RackOutOfRange { .. })
        ));
        assert!(matches!(
            room.inject_fan_fault(0, 99, FanFault::Stuck),
            Err(RoomError::ServerOutOfRange { .. })
        ));
        assert!(matches!(
            room.inject_fan_fault(0, 0, FanFault::Degraded { flow_scale: 2.0 }),
            Err(RoomError::InvalidFault { .. })
        ));

        // Settle healthy, then derate the CRAH to half capacity: the
        // room runs hotter, and restoring capacity cools it back.
        let dt = SimDuration::from_secs(1);
        for _ in 0..1_800 {
            room.step(dt, Utilization::FULL).unwrap();
        }
        let healthy = room.max_die_temperature();
        room.set_crah_capacity(0.5).unwrap();
        assert_eq!(room.crah_capacity(), 0.5);
        for _ in 0..1_800 {
            room.step(dt, Utilization::FULL).unwrap();
        }
        let derated = room.max_die_temperature();
        assert!(
            derated.degrees() > healthy.degrees() + 1.0,
            "healthy {healthy:?} vs derated {derated:?}"
        );
        room.set_crah_capacity(1.0).unwrap();
        for _ in 0..3_600 {
            room.step(dt, Utilization::FULL).unwrap();
        }
        assert!(room.max_die_temperature().degrees() < healthy.degrees() + 0.5);

        // Tile blockage and fan faults round-trip through the room API.
        let commanded = room.air().tile_flow(1).unwrap();
        room.set_tile_blockage(1, 0.6).unwrap();
        assert!((room.tile_blockage(1).unwrap() - 0.6).abs() < 1e-12);
        assert!(room.air().tile_flow(1).unwrap().value() < commanded.value());
        room.set_tile_blockage(1, 0.0).unwrap();
        assert_eq!(room.air().tile_flow(1).unwrap(), commanded);

        room.inject_fan_fault(1, 2, FanFault::Stuck).unwrap();
        assert_eq!(room.fan_fault(1, 2).unwrap(), FanFault::Stuck);
        room.inject_fan_fault(1, 2, FanFault::None).unwrap();
        assert_eq!(room.fan_fault(1, 2).unwrap(), FanFault::None);
    }

    #[test]
    fn checkpoint_restores_bit_identically_across_plans() {
        let mut config = RoomConfig::new(2, 2, 2);
        config.recirculation_fraction = 0.25;
        let schedule = |step: u64| {
            if step % 60 < 30 {
                Utilization::FULL
            } else {
                Utilization::IDLE
            }
        };
        let dt = SimDuration::from_secs(1);

        // Reference: uninterrupted 240-step run with faults injected
        // mid-way (so fault state is part of the snapshot).
        let mut live = Room::with_plan(config.clone(), ShardPlan::new(1)).unwrap();
        pin_fans(&mut live, 2700.0);
        for step in 0..120 {
            live.step(dt, schedule(step)).unwrap();
        }
        live.set_crah_capacity(0.7).unwrap();
        live.set_tile_blockage(2, 0.3).unwrap();
        live.inject_fan_fault(1, 0, FanFault::Degraded { flow_scale: 0.5 })
            .unwrap();
        let snap = live.checkpoint();
        assert_eq!(snap.racks(), 4);
        assert_eq!(snap.accounted_time(), SimDuration::from_secs(120));
        for step in 120..240 {
            live.step(dt, schedule(step)).unwrap();
        }
        let fingerprint = |room: &Room| {
            let aisles: Vec<u64> = (0..room.racks())
                .map(|r| room.cold_aisle_temperature(r).degrees().to_bits())
                .collect();
            (
                room.total_energy().value().to_bits(),
                room.max_die_temperature().degrees().to_bits(),
                room.cooling_energy().value().to_bits(),
                aisles,
            )
        };
        let reference = fingerprint(&live);
        // Checkpointing must not perturb the live run: `live` already
        // continued past the capture point and is our reference.

        // Restore into a fresh room under a different thread plan and
        // replay the tail — bit-identical, fault state included.
        let mut resumed = Room::with_plan(config.clone(), ShardPlan::new(4)).unwrap();
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.crah_capacity(), 0.7);
        assert!((resumed.tile_blockage(2).unwrap() - 0.3).abs() < 1e-12);
        assert_eq!(
            resumed.fan_fault(1, 0).unwrap(),
            FanFault::Degraded { flow_scale: 0.5 }
        );
        for step in 120..240 {
            resumed.step(dt, schedule(step)).unwrap();
        }
        assert_eq!(fingerprint(&resumed), reference);

        // A mismatched room rejects the checkpoint without touching it.
        let mut other = Room::new(RoomConfig::new(1, 2, 2)).unwrap();
        assert!(matches!(
            other.restore(&snap),
            Err(RoomError::CheckpointMismatch { .. })
        ));
    }
}
