//! Figure reproductions: the data series behind Figs. 1(a), 1(b),
//! 2(a), 2(b) and 3.

use leakctl_control::{
    BangBangController, FanController, FixedSpeedController, LookupTable, LutController,
};
use leakctl_units::{Rpm, SimDuration, Utilization};
use leakctl_workload::{suite, Profile};

use crate::characterize::CharacterizationData;
use crate::error::CoreError;
use crate::experiment::{run_experiment, RunOptions};
use crate::fitting::FittedModels;

/// A labeled temperature-versus-time series.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TempSeries {
    /// Legend label (e.g. `"1800 RPM"` or `"LUT"`).
    pub label: String,
    /// `(minutes, °C)` samples.
    pub points: Vec<(f64, f64)>,
}

/// Data behind Fig. 1(a)/(b): processor temperature transients.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig1Data {
    /// Figure title.
    pub title: String,
    /// One series per fan speed (1a) or utilization level (1b).
    pub series: Vec<TempSeries>,
}

impl Fig1Data {
    /// Serializes all series to long-format CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,minutes,temp_c\n");
        for s in &self.series {
            for (m, t) in &s.points {
                out.push_str(&format!("{},{m:.3},{t:.3}\n", s.label));
            }
        }
        out
    }
}

/// One operating point of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig2Point {
    /// Utilization, percent.
    pub util_pct: f64,
    /// Fan speed at this point, RPM.
    pub rpm: f64,
    /// Average measured CPU temperature, °C.
    pub temp_c: f64,
    /// Measured fan power, W.
    pub fan_w: f64,
    /// Leakage estimated from measurements (system power minus the
    /// fitted base and active components), W.
    pub leak_measured_w: f64,
    /// Leakage predicted by the fitted `k2·e^(k3·T)` curve, W.
    pub leak_fitted_w: f64,
    /// Ground-truth leakage from the twin, W (validation only).
    pub leak_true_w: f64,
}

impl Fig2Point {
    /// The controllable cost `P_fan + P_leak(fitted)` the LUT minimizes.
    #[must_use]
    pub fn fan_plus_leak(&self) -> f64 {
        self.fan_w + self.leak_fitted_w
    }
}

/// Data behind Fig. 2(a)/(b): leakage/fan power versus temperature.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig2Data {
    /// Figure title.
    pub title: String,
    /// Points grouped by utilization level (one group for 2a; six for
    /// 2b), each ascending in temperature.
    pub groups: Vec<(String, Vec<Fig2Point>)>,
}

impl Fig2Data {
    /// Serializes to CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "group,util_pct,rpm,temp_c,fan_w,leak_measured_w,leak_fitted_w,leak_true_w,fan_plus_leak_w\n",
        );
        for (label, points) in &self.groups {
            for p in points {
                out.push_str(&format!(
                    "{label},{:.1},{:.0},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
                    p.util_pct,
                    p.rpm,
                    p.temp_c,
                    p.fan_w,
                    p.leak_measured_w,
                    p.leak_fitted_w,
                    p.leak_true_w,
                    p.fan_plus_leak()
                ));
            }
        }
        out
    }

    /// The temperature at which `P_fan + P_leak` is minimal within a
    /// group (the paper reports ≈70 °C for 100 % utilization).
    #[must_use]
    pub fn optimum_of(&self, group: &str) -> Option<Fig2Point> {
        let (_, points) = self.groups.iter().find(|(l, _)| l == group)?;
        points
            .iter()
            .copied()
            .min_by(|a, b| a.fan_plus_leak().total_cmp(&b.fan_plus_leak()))
    }
}

/// Data behind Fig. 3: runtime temperature traces for the three
/// controllers on Test-3, plus the fan-speed traces.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig3Data {
    /// Measured CPU temperature traces, one per controller.
    pub temperature: Vec<TempSeries>,
    /// Fan-speed traces `(minutes, RPM)`, one per controller.
    pub fan_speed: Vec<TempSeries>,
}

impl Fig3Data {
    /// Serializes the temperature traces to CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("controller,minutes,temp_c,rpm\n");
        for (ts, rs) in self.temperature.iter().zip(&self.fan_speed) {
            for ((m, t), (_, r)) in ts.points.iter().zip(&rs.points) {
                out.push_str(&format!("{},{m:.3},{t:.3},{r:.0}\n", ts.label));
            }
        }
        out
    }
}

/// Reproduces **Fig. 1(a)**: CPU temperature under 100 % utilization for
/// the five fan speeds (same protocol as the paper: fan speed set at
/// `t = 0`, 5 idle minutes, 30-minute run, 10-minute cooldown).
///
/// # Errors
///
/// Propagates platform/run failures.
pub fn fig1a(options: &RunOptions, seed: u64) -> Result<Fig1Data, CoreError> {
    let mut series = Vec::new();
    for rpm in crate::paper::FAN_SPEEDS_RPM {
        let profile = Profile::constant(Utilization::FULL, SimDuration::from_mins(30))?;
        let mut controller = FixedSpeedController::new(Rpm::new(rpm));
        let outcome = run_experiment(options, profile, &mut controller, seed)?;
        series.push(TempSeries {
            label: format!("{rpm:.0} RPM"),
            points: outcome
                .samples
                .iter()
                .map(|s| (s.minutes, s.cpu_temp_measured))
                .collect(),
        });
    }
    Ok(Fig1Data {
        title: "Average CPU0 temperature, 100% duty cycle, varying fan speed".to_owned(),
        series,
    })
}

/// Reproduces **Fig. 1(b)**: CPU temperature at 1800 RPM for
/// utilization levels {25, 50, 75, 100} %.
///
/// # Errors
///
/// Propagates platform/run failures.
pub fn fig1b(options: &RunOptions, seed: u64) -> Result<Fig1Data, CoreError> {
    let mut series = Vec::new();
    for pct in [25.0, 50.0, 75.0, 100.0] {
        let level = Utilization::from_percent(pct).map_err(|e| CoreError::Invalid {
            what: e.to_string(),
        })?;
        let profile = Profile::constant(level, SimDuration::from_mins(30))?;
        let mut controller = FixedSpeedController::new(Rpm::new(1800.0));
        let outcome = run_experiment(options, profile, &mut controller, seed)?;
        series.push(TempSeries {
            label: format!("{pct:.0}%"),
            points: outcome
                .samples
                .iter()
                .map(|s| (s.minutes, s.cpu_temp_measured))
                .collect(),
        });
    }
    Ok(Fig1Data {
        title: "Average CPU0 temperature at 1800 RPM, varying utilization".to_owned(),
        series,
    })
}

/// Builds the Fig. 2 point set for one utilization level.
fn fig2_points(
    data: &CharacterizationData,
    fitted: &FittedModels,
    level: Utilization,
) -> Vec<Fig2Point> {
    let mut points: Vec<Fig2Point> = data
        .at_utilization(level)
        .into_iter()
        .map(|p| {
            let t = p.avg_cpu_temp.degrees();
            Fig2Point {
                util_pct: level.as_percent(),
                rpm: p.rpm.value(),
                temp_c: t,
                fan_w: p.fan_power.value(),
                leak_measured_w: p.system_power.value()
                    - fitted.base
                    - fitted.k1 * level.as_percent(),
                leak_fitted_w: fitted.k2 * (fitted.k3 * t).exp(),
                leak_true_w: p.true_leakage.value(),
            }
        })
        .collect();
    points.sort_by(|a, b| a.temp_c.total_cmp(&b.temp_c));
    points
}

/// Reproduces **Fig. 2(a)**: leakage power and fan power versus average
/// CPU temperature at 100 % utilization, from characterization data and
/// the fitted model.
///
/// # Errors
///
/// Returns [`CoreError::Invalid`] when the dataset lacks a 100 %
/// utilization sweep.
pub fn fig2a(data: &CharacterizationData, fitted: &FittedModels) -> Result<Fig2Data, CoreError> {
    let points = fig2_points(data, fitted, Utilization::FULL);
    if points.is_empty() {
        return Err(CoreError::Invalid {
            what: "characterization data has no 100% utilization points".to_owned(),
        });
    }
    Ok(Fig2Data {
        title: "Leakage and fan power vs avg CPU temperature, DC 100%".to_owned(),
        groups: vec![("100%".to_owned(), points)],
    })
}

/// Reproduces **Fig. 2(b)**: fan + leakage power versus temperature for
/// every characterized utilization level at or above 25 % (the paper
/// shows 25–100 %).
///
/// # Errors
///
/// Returns [`CoreError::Invalid`] when no eligible levels exist.
pub fn fig2b(data: &CharacterizationData, fitted: &FittedModels) -> Result<Fig2Data, CoreError> {
    let mut groups = Vec::new();
    for level in data.utilization_axis() {
        if level.as_percent() < 24.9 {
            continue;
        }
        let points = fig2_points(data, fitted, level);
        if !points.is_empty() {
            groups.push((format!("{:.0}%", level.as_percent()), points));
        }
    }
    if groups.is_empty() {
        return Err(CoreError::Invalid {
            what: "characterization data has no utilization levels ≥ 25%".to_owned(),
        });
    }
    Ok(Fig2Data {
        title: "Fan + leakage power vs avg CPU temperature, all duty cycles".to_owned(),
        groups,
    })
}

/// Reproduces **Fig. 3**: temperature (and fan-speed) traces of the
/// three controllers over Test-3.
///
/// # Errors
///
/// Propagates platform/run failures.
pub fn fig3(options: &RunOptions, lut: LookupTable, seed: u64) -> Result<Fig3Data, CoreError> {
    let mut temperature = Vec::new();
    let mut fan_speed = Vec::new();
    let mut controllers: Vec<Box<dyn FanController>> = vec![
        Box::new(FixedSpeedController::paper_default()),
        Box::new(BangBangController::paper_default()),
        Box::new(LutController::paper_default(lut)),
    ];
    for controller in &mut controllers {
        let outcome = run_experiment(options, suite::test3(), controller.as_mut(), seed)?;
        temperature.push(TempSeries {
            label: outcome.controller.clone(),
            points: outcome
                .samples
                .iter()
                .map(|s| (s.minutes, s.cpu_temp_measured))
                .collect(),
        });
        fan_speed.push(TempSeries {
            label: outcome.controller.clone(),
            points: outcome.samples.iter().map(|s| (s.minutes, s.rpm)).collect(),
        });
    }
    Ok(Fig3Data {
        temperature,
        fan_speed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::CharacterizationPoint;
    use leakctl_units::{Celsius, Watts};

    fn synthetic_data() -> (CharacterizationData, FittedModels) {
        let mut points = Vec::new();
        for &u in &[25.0, 50.0, 60.0, 75.0, 90.0, 100.0] {
            for &rpm in &[1800.0, 2400.0, 3000.0, 3600.0, 4200.0] {
                let t = 26.0 + 0.38 * u + (4200.0 - rpm) * 0.0085;
                points.push(CharacterizationPoint {
                    utilization: Utilization::from_percent(u).unwrap(),
                    rpm: Rpm::new(rpm),
                    avg_cpu_temp: Celsius::new(t),
                    max_cpu_temp: Celsius::new(t + 1.5),
                    system_power: Watts::new(460.0 + 0.4452 * u + 0.3231 * (0.04749 * t).exp()),
                    fan_power: Watts::new(33.0 * (rpm / 4200.0_f64).powi(3)),
                    true_leakage: Watts::new(9.0 + 0.3231 * (0.04749 * t).exp()),
                });
            }
        }
        let data = CharacterizationData { points };
        let fitted = crate::fitting::fit_models(&data).unwrap();
        (data, fitted)
    }

    #[test]
    fn fig2a_shows_convex_sum_with_interior_minimum() {
        let (data, fitted) = synthetic_data();
        let fig = fig2a(&data, &fitted).unwrap();
        assert_eq!(fig.groups.len(), 1);
        let pts = &fig.groups[0].1;
        assert_eq!(pts.len(), 5);
        // Temperatures ascend, fan power descends along temperature.
        assert!(pts.windows(2).all(|w| w[1].temp_c > w[0].temp_c));
        assert!(pts.windows(2).all(|w| w[1].fan_w < w[0].fan_w));
        // Interior optimum.
        let opt = fig.optimum_of("100%").unwrap();
        let first = pts.first().unwrap().fan_plus_leak();
        let last = pts.last().unwrap().fan_plus_leak();
        assert!(opt.fan_plus_leak() < first && opt.fan_plus_leak() < last);
        // CSV includes every point.
        assert_eq!(fig.to_csv().lines().count(), 1 + 5);
    }

    #[test]
    fn fig2b_has_groups_per_level() {
        let (data, fitted) = synthetic_data();
        let fig = fig2b(&data, &fitted).unwrap();
        assert_eq!(fig.groups.len(), 6);
        for (label, pts) in &fig.groups {
            assert!(!pts.is_empty(), "{label} group empty");
        }
        assert!(fig.optimum_of("100%").is_some());
        assert!(fig.optimum_of("nope").is_none());
    }

    #[test]
    fn fig2_leak_measured_tracks_fitted_curve() {
        let (data, fitted) = synthetic_data();
        let fig = fig2a(&data, &fitted).unwrap();
        for p in &fig.groups[0].1 {
            assert!(
                (p.leak_measured_w - p.leak_fitted_w).abs() < 1.0,
                "measured {:.2} vs fitted {:.2}",
                p.leak_measured_w,
                p.leak_fitted_w
            );
        }
    }

    #[test]
    fn fig1_csv_format() {
        let fig = Fig1Data {
            title: "x".into(),
            series: vec![TempSeries {
                label: "1800 RPM".into(),
                points: vec![(0.0, 40.0), (1.0, 45.0)],
            }],
        };
        let csv = fig.to_csv();
        assert!(csv.starts_with("series,minutes,temp_c\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn fig3_csv_pairs_temp_and_rpm() {
        let fig = Fig3Data {
            temperature: vec![TempSeries {
                label: "LUT".into(),
                points: vec![(0.0, 50.0)],
            }],
            fan_speed: vec![TempSeries {
                label: "LUT".into(),
                points: vec![(0.0, 2400.0)],
            }],
        };
        let csv = fig.to_csv();
        assert!(csv.contains("LUT,0.000,50.000,2400"));
    }
}
