//! LUT generation from characterization + fitting — step V of the
//! paper: "Based on the model fitting results we generate a Lookup
//! Table that holds the optimum fan speed values for each utilization
//! level."

use leakctl_control::{build_lut_with_predictors, LookupTable, SteadyTempGrid};
use leakctl_power::ServerPowerModel;
use leakctl_units::{Celsius, Utilization};

use crate::characterize::CharacterizationData;
use crate::error::CoreError;
use crate::fitting::FittedModels;

/// The paper's utilization bins, as LUT breakpoints (each entry covers
/// utilizations up to the breakpoint; the last reaches 100 %).
///
/// # Panics
///
/// Never — the levels are static and valid.
#[must_use]
pub fn default_utilization_bins() -> Vec<Utilization> {
    [10.0, 25.0, 40.0, 50.0, 60.0, 75.0, 90.0, 100.0]
        .iter()
        .filter_map(|&p| Utilization::from_percent(p).ok())
        .collect()
}

/// Builds the optimal-fan-speed table from measured characterization
/// data and the fitted power model.
///
/// Two measured grids drive the optimization: the *average* CPU
/// temperature feeds the leakage cost (energy scales with the time-
/// average temperature) while the *hottest* sensor feeds the paper's
/// 75 °C operational cap; the cost function is the fitted
/// `P_leak(T) + P_fan(RPM)`.
///
/// # Errors
///
/// Returns [`CoreError::Invalid`] when the dataset does not form a full
/// grid, and propagates LUT-construction failures.
pub fn build_lut_from_characterization(
    data: &CharacterizationData,
    fitted: &FittedModels,
) -> Result<LookupTable, CoreError> {
    let utils = data.utilization_axis();
    let rpms = data.rpm_axis();
    let mut avg_temps = Vec::with_capacity(utils.len());
    let mut max_temps = Vec::with_capacity(utils.len());
    for &u in &utils {
        let mut avg_row = Vec::with_capacity(rpms.len());
        let mut max_row = Vec::with_capacity(rpms.len());
        for &r in &rpms {
            let point = data.point(u, r).ok_or_else(|| CoreError::Invalid {
                what: format!(
                    "characterization grid incomplete: missing ({:.0}%, {:.0} RPM)",
                    u.as_percent(),
                    r.value()
                ),
            })?;
            avg_row.push(point.avg_cpu_temp);
            max_row.push(point.max_cpu_temp);
        }
        avg_temps.push(avg_row);
        max_temps.push(max_row);
    }
    let avg_grid = SteadyTempGrid::new(utils.clone(), rpms.clone(), avg_temps)?;
    let cap_grid = SteadyTempGrid::new(utils.clone(), rpms.clone(), max_temps)?;

    // Fitted analysis model: measured fan law is known from the fan
    // characterization (the paper measured per-RPM fan power directly);
    // active/leakage come from the fit.
    let model = ServerPowerModel::paper_fit()
        .with_active(fitted.active())
        .with_leakage(fitted.leakage());

    // Bins: the measured utilization levels, extended to 100 % if the
    // sweep did not include it.
    let mut bins = utils;
    if !bins.last().copied().unwrap_or(Utilization::IDLE).is_full() {
        bins.push(Utilization::FULL);
    }

    Ok(build_lut_with_predictors(
        &model,
        &|u, rpm| avg_grid.temp(u, rpm),
        &|u, rpm| cap_grid.temp(u, rpm),
        &rpms,
        &bins,
        Celsius::new(crate::paper::TARGET_MAX_TEMP_C),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::CharacterizationPoint;
    use leakctl_units::{Rpm, Watts};

    fn synthetic_data() -> CharacterizationData {
        // Shapes taken from the calibrated twin: temperature falls with
        // RPM, rises with load; fan power cubic.
        let mut points = Vec::new();
        for &u in &[25.0, 50.0, 75.0, 100.0] {
            for &rpm in &[1800.0, 2400.0, 3000.0, 3600.0, 4200.0] {
                let t = 26.0 + 0.38 * u + (4200.0 - rpm) * (0.008 + 0.00006 * u);
                points.push(CharacterizationPoint {
                    utilization: Utilization::from_percent(u).unwrap(),
                    rpm: Rpm::new(rpm),
                    avg_cpu_temp: Celsius::new(t - 1.0),
                    max_cpu_temp: Celsius::new(t),
                    system_power: Watts::new(460.0 + 0.4452 * u + 0.3231 * (0.04749 * t).exp()),
                    fan_power: Watts::new(33.0 * (rpm / 4200.0_f64).powi(3)),
                    true_leakage: Watts::new(9.0 + 0.3231 * (0.04749 * t).exp()),
                });
            }
        }
        CharacterizationData { points }
    }

    #[test]
    fn pipeline_produces_sensible_lut() {
        let data = synthetic_data();
        let fitted = crate::fitting::fit_models(&data).unwrap();
        let lut = build_lut_from_characterization(&data, &fitted).unwrap();

        // Low load → slow fans; high load → interior optimum under the
        // 75 °C cap (never the extremes).
        let low = lut.lookup(Utilization::from_percent(20.0).unwrap());
        let high = lut.lookup(Utilization::FULL);
        assert!(low <= high, "low-load speed {low} above high-load {high}");
        assert!(
            high >= Rpm::new(2400.0) && high <= Rpm::new(3600.0),
            "full-load optimum {high} should be interior"
        );
        // The cap holds: at the chosen full-load speed, predicted
        // temperature is ≤ 75 °C by construction.
    }

    #[test]
    fn incomplete_grid_rejected() {
        let mut data = synthetic_data();
        data.points.remove(3);
        let fitted = crate::fitting::fit_models(&data).unwrap();
        assert!(matches!(
            build_lut_from_characterization(&data, &fitted),
            Err(CoreError::Invalid { .. })
        ));
    }

    #[test]
    fn default_bins_end_at_full() {
        let bins = default_utilization_bins();
        assert_eq!(bins.len(), 8);
        assert!(bins.last().unwrap().is_full());
        assert!(bins.windows(2).all(|w| w[0] < w[1]));
    }
}
