//! Runtime supervision for a [`Building`]: invariant monitors and a
//! load-shedding watchdog.
//!
//! The simulation layers below this one are *models*; the supervisor is
//! the piece that treats them the way a facility DCIM treats real
//! telemetry — it never trusts an observation. Three invariant monitors
//! sample every room's [`RoomObservation`] at a fixed cadence:
//!
//! - **NaN monitor** — any non-finite temperature, power or COP in a
//!   room snapshot trips immediately (a poisoned state would otherwise
//!   propagate silently through every downstream controller decision).
//! - **Energy-conservation monitor** — the building's IT, plant and
//!   total energies must stay finite, monotone non-decreasing, and
//!   satisfy `total = IT + plant` to a relative tolerance.
//! - **Thermal-runaway monitor** — a room whose hottest die sits above
//!   the cap *and keeps rising* for a configured number of consecutive
//!   samples (or jumps past a hard margin above the cap) trips; this is
//!   the signature of a cooling loop that has lost authority, which a
//!   set-point controller alone cannot distinguish from a transient.
//!
//! The **watchdog** acts on what the monitors and the plant report:
//! when the chilled-water plant is oversubscribed it sheds load by
//! capping every room's activity ([`Building::set_power_cap`]), with
//! hysteresis on release so a marginal plant does not flap; rooms that
//! trip the runaway monitor are escalated into safe mode — coldest
//! feasible supply plus a safe fan floor, applied through the
//! building's validated write path — until their dies drop back below
//! the cap with margin.
//!
//! Everything the supervisor does is a pure function of the sampled
//! observations, so supervised trajectories stay bit-identical for any
//! thread plan, and its state round-trips through the same flat-`f64`
//! checkpoint encoding the controllers use (junk-tolerant on restore).

use leakctl_units::{Celsius, Rpm, SimDuration};

use crate::building::Building;
use crate::control::{ControlAction, RoomObservation};
use crate::error::CoreError;

/// One invariant-monitor trip: which detector fired, where, and when.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorTrip {
    /// Detector name: `"nan"`, `"energy-conservation"` or
    /// `"thermal-runaway"`.
    pub monitor: &'static str,
    /// Room that tripped, or `None` for building-level detectors.
    pub room: Option<usize>,
    /// Simulated time of the trip.
    pub time: SimDuration,
    /// Human-readable description of the violated invariant.
    pub what: String,
}

/// Tuning for a [`Supervisor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Sampling/supervision cadence.
    pub period: SimDuration,
    /// Die-temperature cap the runaway monitor anchors to.
    pub die_cap: Celsius,
    /// °C above the cap that trips the runaway monitor immediately.
    pub runaway_margin: f64,
    /// Consecutive rising over-cap samples before a runaway trip.
    pub runaway_streak: u32,
    /// °C below the cap a room must cool to before an escalation
    /// releases.
    pub release_margin: f64,
    /// Activity fraction rooms are capped to while shedding.
    pub shed_cap: f64,
    /// Plant utilization (demand / available) above which the watchdog
    /// sheds load.
    pub overload_threshold: f64,
    /// A shed releases when the *remembered* peak demand (see
    /// [`demand_decay`](Self::demand_decay)) fits within this fraction
    /// of the available capacity — so release waits for the plant to
    /// recover enough for the pre-shed load, not merely for the capped
    /// load the shed itself produced.
    pub release_threshold: f64,
    /// Per-tick decay of the peak-demand memory (1 = never forget);
    /// lets the release follow a genuine load drop after a while.
    pub demand_decay: f64,
    /// Relative tolerance of the energy-conservation check.
    pub conservation_tolerance: f64,
    /// Safe fan floor commanded on escalation.
    pub safe_fan_floor: Rpm,
}

impl SupervisorConfig {
    /// Defaults anchored to a die cap.
    #[must_use]
    pub fn for_cap(die_cap: Celsius) -> Self {
        Self {
            period: SimDuration::from_secs(15),
            die_cap,
            runaway_margin: 10.0,
            runaway_streak: 4,
            release_margin: 2.0,
            shed_cap: 0.5,
            overload_threshold: 1.0,
            release_threshold: 0.9,
            demand_decay: 0.98,
            conservation_tolerance: 1e-9,
            safe_fan_floor: Rpm::new(4200.0),
        }
    }
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self::for_cap(Celsius::new(85.0))
    }
}

/// Per-monitor trip counters (the CI gates key off these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TripCounts {
    /// NaN-monitor trips.
    pub nan: u64,
    /// Energy-conservation trips.
    pub conservation: u64,
    /// Thermal-runaway trips.
    pub runaway: u64,
}

impl TripCounts {
    /// Trips that indicate a *broken simulation* rather than a thermal
    /// emergency: NaN and conservation. A clean fault ride-through must
    /// keep these at zero (runaway trips are the watchdog doing its
    /// job).
    #[must_use]
    pub fn invariant(&self) -> u64 {
        self.nan + self.conservation
    }
}

/// How many individual [`MonitorTrip`] records are retained (counters
/// keep counting past this; the record list is for diagnostics).
const MAX_RECORDED_TRIPS: usize = 256;

/// The building watchdog — see the module docs.
#[derive(Debug)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    /// Building-wide shed state.
    shedding: bool,
    /// Per-room: escalated into safe mode.
    escalated: Vec<bool>,
    /// Per-room: runaway monitor currently latched.
    runaway_active: Vec<bool>,
    /// Per-room: consecutive rising over-cap samples.
    streaks: Vec<u32>,
    /// Per-room: hottest die at the previous sample.
    prev_die: Vec<f64>,
    /// Peak-hold (decaying) demand memory in watts, for shed release.
    demand_peak: f64,
    /// Previous (it, plant, total) energy sample for monotonicity.
    prev_energy: Option<[f64; 3]>,
    /// Simulated time of the previous supervise() call.
    last_time: SimDuration,
    counts: TripCounts,
    trips: Vec<MonitorTrip>,
    sheds: u64,
    escalations: u64,
    shed_time: SimDuration,
    obs: RoomObservation,
}

impl Supervisor {
    /// A supervisor for a building of `rooms` rooms.
    #[must_use]
    pub fn new(rooms: usize, cfg: SupervisorConfig) -> Self {
        Self {
            cfg,
            shedding: false,
            escalated: vec![false; rooms],
            runaway_active: vec![false; rooms],
            streaks: vec![0; rooms],
            prev_die: vec![f64::NEG_INFINITY; rooms],
            demand_peak: 0.0,
            prev_energy: None,
            last_time: SimDuration::ZERO,
            counts: TripCounts::default(),
            trips: Vec::new(),
            sheds: 0,
            escalations: 0,
            shed_time: SimDuration::ZERO,
            obs: RoomObservation::new(),
        }
    }

    /// The supervision cadence callers should honor.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.cfg.period
    }

    /// The configuration this supervisor runs with.
    #[must_use]
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    fn trip(
        &mut self,
        monitor: &'static str,
        room: Option<usize>,
        time: SimDuration,
        what: String,
    ) {
        match monitor {
            "nan" => self.counts.nan += 1,
            "energy-conservation" => self.counts.conservation += 1,
            _ => self.counts.runaway += 1,
        }
        if self.trips.len() < MAX_RECORDED_TRIPS {
            self.trips.push(MonitorTrip {
                monitor,
                room,
                time,
                what,
            });
        }
    }

    /// One supervision tick: sample every room through the invariant
    /// monitors, then let the watchdog shed load / escalate rooms.
    /// Call at [`period`](Self::period) cadence from the loop that
    /// steps the building.
    ///
    /// # Errors
    ///
    /// Propagates building write-path failures (the monitors themselves
    /// never fail — a bad observation is a trip, not an error).
    pub fn supervise(&mut self, building: &mut Building) -> Result<(), CoreError> {
        let rooms = building.rooms();
        let now = building.accounted_time();
        let elapsed = now.saturating_sub(self.last_time);
        self.last_time = now;
        if self.shedding {
            self.shed_time += elapsed;
        }

        // ---- invariant monitors ----------------------------------------
        let mut any_die_over_cap = false;
        for r in 0..rooms {
            // Sample the observation scalars inside a scope so the
            // borrow of the scratch snapshot ends before trips record.
            let (finite, die) = {
                building.observe_room_into(r, &mut self.obs)?;
                let obs = &self.obs;
                let finite = obs.supply.is_finite()
                    && obs.return_temp.is_finite()
                    && obs.it_power.value().is_finite()
                    && obs.cooling_power.value().is_finite()
                    && obs.cop.is_finite()
                    && obs.rack_die_max.iter().all(|t| t.is_finite())
                    && obs.cold_aisles.iter().all(|t| t.is_finite());
                (finite, obs.max_die_temperature().degrees())
            };

            // NaN monitor.
            if !finite {
                self.trip(
                    "nan",
                    Some(r),
                    now,
                    "non-finite temperature, power or COP in room snapshot".to_owned(),
                );
            }

            // Thermal-runaway monitor.
            let cap = self.cfg.die_cap.degrees();
            if die > cap {
                any_die_over_cap = true;
            }
            if die > cap + self.cfg.runaway_margin {
                self.trip(
                    "thermal-runaway",
                    Some(r),
                    now,
                    format!("die {die:.2} °C past hard margin above the {cap:.0} °C cap"),
                );
                self.runaway_active[r] = true;
                self.streaks[r] = 0;
            } else if die > cap && die > self.prev_die[r] {
                self.streaks[r] += 1;
                if self.streaks[r] >= self.cfg.runaway_streak {
                    self.trip(
                        "thermal-runaway",
                        Some(r),
                        now,
                        format!(
                            "die {die:.2} °C over the {cap:.0} °C cap and rising for {} samples",
                            self.streaks[r]
                        ),
                    );
                    self.runaway_active[r] = true;
                    self.streaks[r] = 0;
                }
            } else {
                self.streaks[r] = 0;
            }
            if self.runaway_active[r] && die < cap - self.cfg.release_margin {
                self.runaway_active[r] = false;
            }
            self.prev_die[r] = die;
        }

        // Energy-conservation monitor (building level).
        let it = building.it_energy().value();
        let plant = building.plant_energy().value();
        let total = building.total_energy().value();
        if !(it.is_finite() && plant.is_finite() && total.is_finite()) {
            self.trip(
                "energy-conservation",
                None,
                now,
                "non-finite energy accumulator".to_owned(),
            );
        } else {
            let scale = total.abs().max(1.0);
            if (total - (it + plant)).abs() > self.cfg.conservation_tolerance * scale {
                self.trip(
                    "energy-conservation",
                    None,
                    now,
                    format!("total {total:.3} J != IT {it:.3} J + plant {plant:.3} J"),
                );
            }
            if let Some([p_it, p_plant, p_total]) = self.prev_energy {
                if it < p_it || plant < p_plant || total < p_total {
                    self.trip(
                        "energy-conservation",
                        None,
                        now,
                        "energy accumulator moved backwards".to_owned(),
                    );
                }
            }
            self.prev_energy = Some([it, plant, total]);
        }

        // ---- watchdog --------------------------------------------------
        let utilization = building.plant().utilization();
        let demand = building.plant().demand().value();
        let available = building.plant().available_capacity().value();
        self.demand_peak = demand.max(self.demand_peak * self.cfg.demand_decay);
        if !self.shedding && utilization > self.cfg.overload_threshold {
            self.shedding = true;
            self.sheds += 1;
            for r in 0..rooms {
                building.set_power_cap(r, self.cfg.shed_cap)?;
            }
        } else if self.shedding
            && self.demand_peak <= self.cfg.release_threshold * available
            && !any_die_over_cap
        {
            self.shedding = false;
            for r in 0..rooms {
                if !self.escalated[r] {
                    building.set_power_cap(r, 1.0)?;
                }
            }
        }

        for r in 0..rooms {
            if self.runaway_active[r] && !self.escalated[r] {
                self.escalated[r] = true;
                self.escalations += 1;
                // Safe mode: coldest feasible supply, safe fan floor,
                // and the room's activity capped like a shed.
                let action = ControlAction::hold()
                    .with_supply(building.supply_floor())
                    .with_fan_floor(self.cfg.safe_fan_floor);
                building.apply(r, &action)?;
                building.set_power_cap(r, self.cfg.shed_cap.min(building.power_cap(r)?))?;
            } else if self.escalated[r] && !self.runaway_active[r] {
                self.escalated[r] = false;
                let cap = if self.shedding {
                    self.cfg.shed_cap
                } else {
                    1.0
                };
                building.set_power_cap(r, cap)?;
            }
        }
        Ok(())
    }

    // ---- telemetry -------------------------------------------------------

    /// Per-monitor trip counters.
    #[must_use]
    pub fn counts(&self) -> TripCounts {
        self.counts
    }

    /// Recorded trips (capped at an internal limit; the
    /// [`counts`](Self::counts) keep counting past it).
    #[must_use]
    pub fn trips(&self) -> &[MonitorTrip] {
        &self.trips
    }

    /// Whether the watchdog is currently shedding load.
    #[must_use]
    pub fn shedding(&self) -> bool {
        self.shedding
    }

    /// Times the watchdog entered a shed.
    #[must_use]
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Rooms escalated into safe mode (cumulative).
    #[must_use]
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Whether room `room` is currently escalated.
    #[must_use]
    pub fn escalated(&self, room: usize) -> bool {
        self.escalated.get(room).copied().unwrap_or(false)
    }

    /// Total simulated time spent shedding.
    #[must_use]
    pub fn shed_time(&self) -> SimDuration {
        self.shed_time
    }

    // ---- checkpoint ------------------------------------------------------

    /// Flat-`f64` snapshot of the supervisor's decision state (same
    /// shape the controllers use), sufficient for a bit-identical
    /// resume. Individual trip *records* are not carried — the counters
    /// are.
    #[must_use]
    pub fn checkpoint_state(&self) -> Vec<f64> {
        let mut state = vec![
            f64::from(u8::from(self.shedding)),
            self.sheds as f64,
            self.escalations as f64,
            self.counts.nan as f64,
            self.counts.conservation as f64,
            self.counts.runaway as f64,
            self.shed_time.as_millis() as f64,
            self.last_time.as_millis() as f64,
            self.demand_peak,
            f64::from(u8::from(self.prev_energy.is_some())),
        ];
        let [it, plant, total] = self.prev_energy.unwrap_or([0.0; 3]);
        state.extend([it, plant, total]);
        for r in 0..self.escalated.len() {
            state.push(f64::from(u8::from(self.escalated[r])));
            state.push(f64::from(u8::from(self.runaway_active[r])));
            state.push(f64::from(self.streaks[r]));
            state.push(self.prev_die[r]);
        }
        state
    }

    /// Restores [`checkpoint_state`](Self::checkpoint_state). Tolerant
    /// of truncated or foreign state: missing fields fall back to the
    /// fresh-supervisor defaults, so a garbage restore degrades to a
    /// conservative restart rather than a panic.
    pub fn restore_state(&mut self, state: &[f64]) {
        let flag = |i: usize| state.get(i).copied().unwrap_or(0.0) == 1.0;
        let count = |i: usize| {
            let v = state.get(i).copied().unwrap_or(0.0);
            if v.is_finite() && v >= 0.0 {
                v as u64
            } else {
                0
            }
        };
        self.shedding = flag(0);
        self.sheds = count(1);
        self.escalations = count(2);
        self.counts = TripCounts {
            nan: count(3),
            conservation: count(4),
            runaway: count(5),
        };
        self.shed_time = SimDuration::from_millis(count(6));
        self.last_time = SimDuration::from_millis(count(7));
        self.demand_peak = {
            let v = state.get(8).copied().unwrap_or(0.0);
            if v.is_finite() && v >= 0.0 {
                v
            } else {
                0.0
            }
        };
        self.prev_energy = if flag(9) {
            Some([
                state.get(10).copied().unwrap_or(0.0),
                state.get(11).copied().unwrap_or(0.0),
                state.get(12).copied().unwrap_or(0.0),
            ])
        } else {
            None
        };
        for r in 0..self.escalated.len() {
            let base = 13 + 4 * r;
            self.escalated[r] = flag(base);
            self.runaway_active[r] = flag(base + 1);
            self.streaks[r] = u32::try_from(count(base + 2)).unwrap_or(u32::MAX);
            self.prev_die[r] = state.get(base + 3).copied().unwrap_or(f64::NEG_INFINITY);
        }
        self.trips.clear();
    }

    /// Clears trip records, counters and watchdog state (keeps the
    /// config) — for reuse after a warmup phase.
    pub fn reset(&mut self) {
        let rooms = self.escalated.len();
        let cfg = self.cfg;
        *self = Self::new(rooms, cfg);
    }
}
