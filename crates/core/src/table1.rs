//! Table I reproduction: the four test workloads × three controllers.

use leakctl_control::{
    BangBangController, FanController, FixedSpeedController, LookupTable, LutController,
};
use leakctl_units::{KilowattHours, Rpm, SimDuration, Watts};
use leakctl_workload::suite;

use crate::error::CoreError;
use crate::experiment::{measure_idle_power, run_experiment, RunOptions};

/// Options for [`generate_table1`].
#[derive(Debug, Clone)]
pub struct Table1Options {
    /// Per-run protocol options.
    pub run: RunOptions,
    /// Seed for sensor noise and Test-4's queueing workload.
    pub seed: u64,
    /// The LUT to evaluate (from the characterization pipeline). When
    /// absent, a table derived from the calibrated analysis model's
    /// steady-state preview is used.
    pub lut: LookupTable,
}

/// One row of the reproduced Table I.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Table1Row {
    /// Test name (`Test-1` … `Test-4`).
    pub test: String,
    /// Control scheme (`Default`, `Bang`, `LUT`).
    pub scheme: String,
    /// Total energy over the 80-minute run.
    pub energy: KilowattHours,
    /// Net savings vs. the Default scheme (idle energy subtracted);
    /// `None` for the baseline rows.
    pub net_savings_pct: Option<f64>,
    /// Peak total power.
    pub peak_power: Watts,
    /// Hottest measured CPU temperature, °C.
    pub max_temp_c: f64,
    /// Fan speed changes during the run.
    pub fan_changes: u64,
    /// Time-averaged fan speed.
    pub avg_rpm: Rpm,
}

/// The reproduced Table I.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Table1 {
    /// All rows, test-major, Default → Bang → LUT within each test.
    pub rows: Vec<Table1Row>,
    /// The idle-power reference used for net-savings accounting.
    pub idle_power: Watts,
}

impl Table1 {
    /// Renders the table as ASCII, mirroring the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.test.clone(),
                    r.scheme.clone(),
                    format!("{:.4}", r.energy.value()),
                    r.net_savings_pct
                        .map_or_else(|| "--".to_owned(), |s| format!("{s:.1}%")),
                    format!("{:.0}", r.peak_power.value()),
                    format!("{:.0}", r.max_temp_c),
                    format!("{}", r.fan_changes),
                    format!("{:.0}", r.avg_rpm.value()),
                ]
            })
            .collect();
        let mut out = crate::report::ascii_table(
            &[
                "Test",
                "Scheme",
                "Energy (kWh)",
                "Net Savings",
                "Peak Pwr (W)",
                "Max Temp (C)",
                "#fan change",
                "Avg RPM",
            ],
            &rows,
        );
        out.push_str(&format!(
            "idle reference: {:.0} W (subtracted for net savings)\n",
            self.idle_power.value()
        ));
        out
    }

    /// Serializes the table to CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "test,scheme,energy_kwh,net_savings_pct,peak_power_w,max_temp_c,fan_changes,avg_rpm\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{:.4},{},{:.0},{:.1},{},{:.0}\n",
                r.test,
                r.scheme,
                r.energy.value(),
                r.net_savings_pct
                    .map_or_else(|| "".to_owned(), |s| format!("{s:.2}")),
                r.peak_power.value(),
                r.max_temp_c,
                r.fan_changes,
                r.avg_rpm.value(),
            ));
        }
        out
    }

    /// The row for a given test and scheme.
    #[must_use]
    pub fn row(&self, test: &str, scheme: &str) -> Option<&Table1Row> {
        self.rows
            .iter()
            .find(|r| r.test == test && r.scheme == scheme)
    }
}

/// Reproduces Table I: runs `{Default, Bang, LUT} × {Test-1 … Test-4}`
/// under the paper's protocol and computes net savings against the
/// Default rows with the idle energy subtracted.
///
/// # Errors
///
/// Propagates platform/run failures.
pub fn generate_table1(options: &Table1Options) -> Result<Table1, CoreError> {
    let idle_power = measure_idle_power(&options.run.config, options.seed)?;
    let mut rows = Vec::with_capacity(12);

    for (test_name, profile) in suite::all(options.seed) {
        let mut controllers: Vec<Box<dyn FanController>> = vec![
            Box::new(FixedSpeedController::paper_default()),
            Box::new(BangBangController::paper_default()),
            Box::new(LutController::paper_default(options.lut.clone())),
        ];
        let mut test_rows = Vec::with_capacity(3);
        for controller in &mut controllers {
            let outcome = run_experiment(
                &options.run,
                profile.clone(),
                controller.as_mut(),
                options.seed,
            )?;
            let m = outcome.metrics;
            test_rows.push(Table1Row {
                test: test_name.to_owned(),
                scheme: outcome.controller,
                energy: m.total_energy.as_kwh(),
                net_savings_pct: None,
                peak_power: m.peak_power,
                max_temp_c: m.max_temp.degrees(),
                fan_changes: m.fan_changes,
                avg_rpm: m.avg_rpm,
            });
        }
        // Net savings vs. the Default row of this test.
        let duration: SimDuration = suite::TEST_DURATION;
        let idle_energy = idle_power * duration;
        let base_net = test_rows[0].energy.as_joules() - idle_energy;
        for row in test_rows.iter_mut().skip(1) {
            let net = row.energy.as_joules() - idle_energy;
            row.net_savings_pct = Some((base_net - net) / base_net * 100.0);
        }
        rows.extend(test_rows);
    }
    Ok(Table1 { rows, idle_power })
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakctl_units::Utilization;

    #[test]
    fn render_and_csv_shapes() {
        let table = Table1 {
            rows: vec![
                Table1Row {
                    test: "Test-1".into(),
                    scheme: "Default".into(),
                    energy: KilowattHours::new(0.6695),
                    net_savings_pct: None,
                    peak_power: Watts::new(710.0),
                    max_temp_c: 61.0,
                    fan_changes: 0,
                    avg_rpm: Rpm::new(3300.0),
                },
                Table1Row {
                    test: "Test-1".into(),
                    scheme: "LUT".into(),
                    energy: KilowattHours::new(0.6556),
                    net_savings_pct: Some(7.7),
                    peak_power: Watts::new(705.0),
                    max_temp_c: 73.0,
                    fan_changes: 6,
                    avg_rpm: Rpm::new(2117.0),
                },
            ],
            idle_power: Watts::new(460.0),
        };
        let text = table.render();
        assert!(text.contains("Test-1"));
        assert!(text.contains("7.7%"));
        assert!(text.contains("--"));
        assert!(text.contains("idle reference"));
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("0.6556"));
        assert!(table.row("Test-1", "LUT").is_some());
        assert!(table.row("Test-9", "LUT").is_none());
    }

    /// A miniature end-to-end Table I over one short test to keep the
    /// unit suite fast; the full 4×3 reproduction runs in the bench
    /// harness and integration tests.
    #[test]
    fn mini_table_lut_beats_default() {
        let lut = LookupTable::new(vec![
            (Utilization::from_percent(25.0).unwrap(), Rpm::new(1800.0)),
            (
                Utilization::from_percent(50.0).unwrap(),
                Rpm::new(1800.0) + Rpm::new(200.0),
            ),
            (Utilization::from_percent(75.0).unwrap(), Rpm::new(2200.0)),
            (Utilization::from_percent(100.0).unwrap(), Rpm::new(2400.0)),
        ])
        .unwrap();
        let mut run = RunOptions::fast();
        run.record = false;
        let idle = measure_idle_power(&run.config, 3).unwrap();

        let profile = leakctl_workload::Profile::builder()
            .hold_percent(90.0, SimDuration::from_mins(10))
            .unwrap()
            .hold_percent(20.0, SimDuration::from_mins(10))
            .unwrap()
            .build();

        let mut default = FixedSpeedController::paper_default();
        let base = run_experiment(&run, profile.clone(), &mut default, 3).unwrap();
        let mut lutc = LutController::paper_default(lut);
        let ours = run_experiment(&run, profile, &mut lutc, 3).unwrap();

        let dur = SimDuration::from_mins(20);
        let base_net = base.metrics.total_energy - idle * dur;
        let ours_net = ours.metrics.total_energy - idle * dur;
        assert!(
            ours_net < base_net,
            "LUT net {ours_net:?} should beat default {base_net:?}"
        );
    }
}
