//! Model identification from characterization measurements (the paper's
//! "Leakage Model Fitting" step producing Eqn. 2's constants).

use leakctl_power::fit::{self, Goodness, LmOptions};
use leakctl_power::{ActivePowerModel, EmpiricalLeakage};

use crate::characterize::CharacterizationData;
use crate::error::CoreError;

/// The constants identified from measurements, mirroring the paper's
/// Eqn. 2 fit (`k1 = 0.4452`, `k2 = 0.3231`, `k3 = 0.04749`, 2.243 W
/// error, 98 % accuracy).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FittedModels {
    /// Active-power slope, W/% (`k1`).
    pub k1: f64,
    /// Constant term, W. Absorbs the server's static power *and* the
    /// temperature-independent leakage `C` — the two are not separable
    /// from total-power measurements, and do not need to be: constants
    /// do not move the `argmin` of `P_leak + P_fan`.
    pub base: f64,
    /// Leakage scale, W (`k2`).
    pub k2: f64,
    /// Leakage exponent, 1/°C (`k3`).
    pub k3: f64,
    /// Joint-fit residual statistics over all grid points.
    pub goodness: Goodness,
}

impl FittedModels {
    /// The identified active-power model.
    #[must_use]
    pub fn active(&self) -> ActivePowerModel {
        ActivePowerModel::new(self.k1.max(0.0))
    }

    /// The identified leakage model with the constant dropped (see
    /// [`FittedModels::base`] for why that is sound for LUT building).
    #[must_use]
    pub fn leakage(&self) -> EmpiricalLeakage {
        EmpiricalLeakage::new(0.0, self.k2.max(0.0), self.k3.max(1e-6))
    }

    /// Predicted system power at a `(utilization %, temperature °C)`
    /// point.
    #[must_use]
    pub fn predict_system_power(&self, util_pct: f64, temp_c: f64) -> f64 {
        self.base + self.k1 * util_pct + self.k2 * (self.k3 * temp_c).exp()
    }
}

/// Identifies `k1`, `k2`, `k3` (and the lumped constant) from a
/// characterization dataset.
///
/// Mirrors the paper's two-stage procedure, then refines jointly:
///
/// 1. **Active slope seed** — OLS of system power against utilization
///    at the *highest* fan speed, where temperatures (hence leakage)
///    move least across load levels.
/// 2. **Leakage seed** — exponential fit of the active-corrected
///    residual against average CPU temperature.
/// 3. **Joint refinement** — Levenberg–Marquardt over
///    `(base, k1, k2, k3)` on every grid point.
///
/// # Errors
///
/// Returns [`CoreError::Invalid`] for datasets too small to identify
/// four parameters, and propagates fitting failures.
pub fn fit_models(data: &CharacterizationData) -> Result<FittedModels, CoreError> {
    if data.points.len() < 6 {
        return Err(CoreError::Invalid {
            what: format!(
                "need at least 6 characterization points to fit 4 parameters, got {}",
                data.points.len()
            ),
        });
    }

    // Stage 1: k1 seed at the fastest fan speed.
    let rpm_axis = data.rpm_axis();
    let Some(&fastest) = rpm_axis.last() else {
        return Err(CoreError::Invalid {
            what: "characterization data has no fan-speed axis".to_owned(),
        });
    };
    let (us, ps): (Vec<f64>, Vec<f64>) = data
        .points
        .iter()
        .filter(|p| p.rpm == fastest)
        .map(|p| (p.utilization.as_percent(), p.system_power.value()))
        .unzip();
    let k1_seed = if us.len() >= 2 {
        fit::linear(&us, &ps).map(|f| f.slope).unwrap_or(0.4)
    } else {
        0.4
    };

    // Stage 2: leakage seed from active-corrected residuals.
    let temps: Vec<f64> = data
        .points
        .iter()
        .map(|p| p.avg_cpu_temp.degrees())
        .collect();
    let residuals: Vec<f64> = data
        .points
        .iter()
        .map(|p| p.system_power.value() - k1_seed * p.utilization.as_percent())
        .collect();
    let exp_seed = fit::exponential(&temps, &residuals)?;

    // Stage 3: joint refinement. Observations are indexed through x so
    // the 2-D regressors (U, T) can ride through the 1-D LM interface.
    let utils: Vec<f64> = data
        .points
        .iter()
        .map(|p| p.utilization.as_percent())
        .collect();
    let powers: Vec<f64> = data.points.iter().map(|p| p.system_power.value()).collect();
    let xs: Vec<f64> = (0..data.points.len()).map(|i| i as f64).collect();
    let utils_for_model = utils.clone();
    let temps_for_model = temps.clone();
    let joint = fit::levenberg_marquardt(
        move |p, x| {
            let i = x as usize;
            p[0] + p[1] * utils_for_model[i] + p[2] * (p[3] * temps_for_model[i]).exp()
        },
        &xs,
        &powers,
        &[exp_seed.offset, k1_seed, exp_seed.scale, exp_seed.rate],
        LmOptions::default(),
    )?;

    Ok(FittedModels {
        base: joint.params[0],
        k1: joint.params[1],
        k2: joint.params[2],
        k3: joint.params[3],
        goodness: joint.goodness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::CharacterizationPoint;
    use leakctl_units::{Celsius, Rpm, Utilization, Watts};

    /// Builds a synthetic dataset from known constants, with the twin's
    /// realistic ranges.
    fn synthetic(base: f64, k1: f64, k2: f64, k3: f64) -> CharacterizationData {
        let mut points = Vec::new();
        for &u in &[10.0, 25.0, 50.0, 75.0, 100.0] {
            for &rpm in &[1800.0, 2400.0, 3000.0, 3600.0, 4200.0] {
                // Temperature grows with load, falls with fan speed.
                let t = 30.0 + 0.32 * u + (4200.0 - rpm) * 0.0075;
                let p = base + k1 * u + k2 * (k3 * t).exp();
                points.push(CharacterizationPoint {
                    utilization: Utilization::from_percent(u).unwrap(),
                    rpm: Rpm::new(rpm),
                    avg_cpu_temp: Celsius::new(t),
                    max_cpu_temp: Celsius::new(t + 1.0),
                    system_power: Watts::new(p),
                    fan_power: Watts::new(33.0 * (rpm / 4200.0_f64).powi(3)),
                    true_leakage: Watts::new(k2 * (k3 * t).exp()),
                });
            }
        }
        CharacterizationData { points }
    }

    #[test]
    fn recovers_known_constants() {
        let data = synthetic(470.0, 0.4452, 0.3231, 0.04749);
        let fit = fit_models(&data).unwrap();
        assert!((fit.k1 - 0.4452).abs() < 5e-3, "k1 = {}", fit.k1);
        assert!((fit.k3 - 0.04749).abs() < 2e-3, "k3 = {}", fit.k3);
        // k2 and base trade off against k3 slightly; check prediction
        // quality instead of raw parameters.
        assert!(fit.goodness.rmse < 0.1, "rmse = {}", fit.goodness.rmse);
        assert!(fit.goodness.accuracy_percent > 99.0);
        for p in &data.points {
            let pred =
                fit.predict_system_power(p.utilization.as_percent(), p.avg_cpu_temp.degrees());
            assert!((pred - p.system_power.value()).abs() < 0.5);
        }
    }

    #[test]
    fn derived_models_usable() {
        let data = synthetic(470.0, 0.4452, 0.3231, 0.04749);
        let fit = fit_models(&data).unwrap();
        let active = fit.active();
        assert!((active.power(Utilization::FULL).value() - 44.52).abs() < 1.0);
        let leak = fit.leakage();
        assert!(leak.power(Celsius::new(80.0)) > leak.power(Celsius::new(50.0)));
        assert_eq!(leak.offset(), 0.0);
    }

    #[test]
    fn too_few_points_rejected() {
        let mut data = synthetic(470.0, 0.4, 0.3, 0.05);
        data.points.truncate(4);
        assert!(matches!(fit_models(&data), Err(CoreError::Invalid { .. })));
    }
}
