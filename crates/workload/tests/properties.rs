//! Property-based tests for workload synthesis.

use leakctl_sim::SimRng;
use leakctl_units::{SimDuration, SimInstant, Utilization};
use leakctl_workload::{LoadGen, MmcQueue, Profile, PwmConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A profile's target always stays within [0, 1] at any time,
    /// including far past its end.
    #[test]
    fn profile_target_always_valid(
        levels in prop::collection::vec(0.0..=1.0f64, 1..8),
        query_min in 0.0..500.0f64,
    ) {
        let mut b = Profile::builder();
        for level in &levels {
            b = b
                .hold(
                    Utilization::from_fraction(*level).expect("valid"),
                    SimDuration::from_mins(5),
                )
                .expect("valid");
        }
        let p = b.build();
        let at = SimInstant::ZERO + SimDuration::from_secs_f64(query_min * 60.0);
        let u = p.target(at);
        prop_assert!((0.0..=1.0).contains(&u.as_fraction()));
    }

    /// The analytic mean of a hold-only profile equals the weighted
    /// average of its levels.
    #[test]
    fn profile_mean_matches_weights(
        segments in prop::collection::vec((0.0..=1.0f64, 1u64..30), 1..6),
    ) {
        let mut b = Profile::builder();
        let mut weighted = 0.0;
        let mut total = 0.0;
        for (level, mins) in &segments {
            b = b
                .hold(
                    Utilization::from_fraction(*level).expect("valid"),
                    SimDuration::from_mins(*mins),
                )
                .expect("valid");
            weighted += level * (*mins as f64);
            total += *mins as f64;
        }
        let p = b.build();
        prop_assert!((p.mean_target().as_fraction() - weighted / total).abs() < 1e-9);
    }

    /// LoadGen's duty-cycled average over whole PWM windows converges to
    /// the target level.
    #[test]
    fn loadgen_average_matches_target(level in 0.0..=1.0f64) {
        let target = Utilization::from_fraction(level).expect("valid");
        let gen = LoadGen::new(
            Profile::constant(target, SimDuration::from_hours(1)).expect("valid"),
            PwmConfig::default(),
        );
        // Average over 30 whole windows.
        let window = SimDuration::from_secs(40 * 30);
        let avg = gen.average_over(SimInstant::ZERO, window);
        prop_assert!(
            (avg.as_fraction() - level).abs() < 0.03,
            "target {level}, averaged {avg}"
        );
    }

    /// Instantaneous LoadGen output is always either idle or the
    /// configured intensity.
    #[test]
    fn loadgen_instantaneous_is_binary(
        level in 0.0..=1.0f64,
        intensity in 0.2..=1.0f64,
        at_secs in 0u64..7200,
    ) {
        let gen = LoadGen::new(
            Profile::constant(
                Utilization::from_fraction(level).expect("valid"),
                SimDuration::from_hours(2),
            )
            .expect("valid"),
            PwmConfig::new(SimDuration::from_secs(40), intensity),
        );
        let inst = gen
            .instantaneous(SimInstant::ZERO + SimDuration::from_secs(at_secs))
            .as_fraction();
        prop_assert!(
            inst == 0.0 || (inst - intensity).abs() < 1e-12,
            "instantaneous {inst} neither idle nor intensity {intensity}"
        );
    }

    /// M/M/c occupancy traces never exceed 100 % and track the offered
    /// load loosely.
    #[test]
    fn queueing_occupancy_bounded(rho in 0.1..0.8f64, seed in 0u64..50) {
        let queue = MmcQueue::new(32, rho * 32.0, 1.0).expect("stable queue");
        let mut rng = SimRng::seed(seed);
        let (profile, stats) = queue
            .generate(SimDuration::from_mins(30), SimDuration::from_secs(1), &mut rng)
            .expect("generates");
        prop_assert!(stats.peak_utilization.as_fraction() <= 1.0);
        prop_assert!(stats.completions <= stats.arrivals);
        prop_assert!(
            (stats.mean_utilization.as_fraction() - rho).abs() < 0.15,
            "offered {rho}, measured {}",
            stats.mean_utilization
        );
        prop_assert_eq!(profile.duration(), SimDuration::from_mins(30));
    }
}
