//! Poisson-arrival / exponential-service multi-server queue.
//!
//! Test-4 of the paper "follows a statistical distribution of Poisson
//! arrival times and exponential service times that emulates a shell
//! workload", citing Meisner & Wenisch's stochastic queueing simulation.
//! This module implements that generative model directly: an M/M/c queue
//! simulated event-by-event, with server occupancy sampled on a fixed
//! grid to produce a utilization trace.

use leakctl_sim::{EventQueue, SimRng};
use leakctl_units::{SimDuration, SimInstant, Utilization};

use crate::profile::{Profile, ProfileError};

/// An M/M/c queueing workload generator.
///
/// # Example
///
/// ```
/// use leakctl_sim::SimRng;
/// use leakctl_units::SimDuration;
/// use leakctl_workload::MmcQueue;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 64 service slots, offered load ρ = 0.45.
/// let queue = MmcQueue::new(64, 28.8, 1.0)?;
/// let mut rng = SimRng::seed(7);
/// let (profile, stats) = queue.generate(
///     SimDuration::from_mins(80),
///     SimDuration::from_secs(1),
///     &mut rng,
/// )?;
/// assert_eq!(profile.duration(), SimDuration::from_mins(80));
/// assert!((stats.mean_utilization.as_fraction() - 0.45).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmcQueue {
    servers: u32,
    arrival_rate: f64,
    service_rate: f64,
}

/// Summary statistics of a generated queueing trace.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QueueStats {
    /// Jobs that arrived during the horizon.
    pub arrivals: u64,
    /// Jobs completed during the horizon.
    pub completions: u64,
    /// Largest queue length (waiting jobs, excluding in-service).
    pub max_queue_len: usize,
    /// Time-average utilization over the horizon.
    pub mean_utilization: Utilization,
    /// Peak sampled utilization.
    pub peak_utilization: Utilization,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueEvent {
    Arrival,
    Departure,
}

impl MmcQueue {
    /// Creates a queue with `servers` service slots, Poisson arrivals at
    /// `arrival_rate` jobs/s and exponential service at `service_rate`
    /// jobs/s per busy server.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when `servers == 0`, a rate is not
    /// strictly positive, or the offered load `λ/(c·μ)` is ≥ 1 (an
    /// unstable queue would saturate at 100 % and stop being a useful
    /// utilization generator).
    pub fn new(servers: u32, arrival_rate: f64, service_rate: f64) -> Result<Self, String> {
        if servers == 0 {
            return Err("server count must be positive".to_owned());
        }
        if !(arrival_rate > 0.0 && arrival_rate.is_finite()) {
            return Err("arrival rate must be positive and finite".to_owned());
        }
        if !(service_rate > 0.0 && service_rate.is_finite()) {
            return Err("service rate must be positive and finite".to_owned());
        }
        let rho = arrival_rate / (f64::from(servers) * service_rate);
        if rho >= 1.0 {
            return Err(format!("offered load {rho:.3} must be < 1 for stability"));
        }
        Ok(Self {
            servers,
            arrival_rate,
            service_rate,
        })
    }

    /// Builds a queue targeting a given mean utilization with the given
    /// number of servers and mean service time.
    ///
    /// # Errors
    ///
    /// Propagates the validation rules of [`MmcQueue::new`].
    pub fn for_target_utilization(
        servers: u32,
        target: Utilization,
        mean_service: SimDuration,
    ) -> Result<Self, String> {
        if mean_service.is_zero() {
            return Err("mean service time must be non-zero".to_owned());
        }
        let mu = 1.0 / mean_service.as_secs_f64();
        let lambda = target.as_fraction() * f64::from(servers) * mu;
        if lambda <= 0.0 {
            return Err("target utilization must be positive".to_owned());
        }
        Self::new(servers, lambda, mu)
    }

    /// The offered load `ρ = λ/(c·μ)`.
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate / (f64::from(self.servers) * self.service_rate)
    }

    /// Simulates the queue for `horizon`, sampling busy-server
    /// occupancy every `sample_period` into a [`Profile`].
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::BadSamples`] when the horizon is shorter
    /// than one sample period.
    pub fn generate(
        &self,
        horizon: SimDuration,
        sample_period: SimDuration,
        rng: &mut SimRng,
    ) -> Result<(Profile, QueueStats), ProfileError> {
        let mut events: EventQueue<QueueEvent> = EventQueue::new();
        let first =
            SimInstant::ZERO + SimDuration::from_secs_f64(rng.next_exponential(self.arrival_rate));
        events.push(first, QueueEvent::Arrival);

        let end = SimInstant::ZERO + horizon;
        let mut busy: u32 = 0;
        let mut waiting: usize = 0;
        let mut arrivals = 0u64;
        let mut completions = 0u64;
        let mut max_queue_len = 0usize;

        let mut samples: Vec<Utilization> = Vec::new();
        let mut next_sample = SimInstant::ZERO;

        while let Some(event_time) = events.peek_time() {
            if event_time > end {
                break;
            }
            // Record samples for every grid point before this event.
            while next_sample < event_time && next_sample < end {
                samples.push(self.occupancy(busy));
                next_sample += sample_period;
            }
            let (now, event) = events.pop().expect("peeked event exists");
            match event {
                QueueEvent::Arrival => {
                    arrivals += 1;
                    if busy < self.servers {
                        busy += 1;
                        let svc =
                            SimDuration::from_secs_f64(rng.next_exponential(self.service_rate));
                        events.push(now + svc, QueueEvent::Departure);
                    } else {
                        waiting += 1;
                        max_queue_len = max_queue_len.max(waiting);
                    }
                    let gap = SimDuration::from_secs_f64(rng.next_exponential(self.arrival_rate));
                    events.push(now + gap, QueueEvent::Arrival);
                }
                QueueEvent::Departure => {
                    completions += 1;
                    if waiting > 0 {
                        waiting -= 1;
                        let svc =
                            SimDuration::from_secs_f64(rng.next_exponential(self.service_rate));
                        events.push(now + svc, QueueEvent::Departure);
                    } else {
                        busy = busy.saturating_sub(1);
                    }
                }
            }
        }
        // Fill the remaining grid with the final occupancy.
        while next_sample < end {
            samples.push(self.occupancy(busy));
            next_sample += sample_period;
        }

        let n = samples.len() as f64;
        let mean = samples.iter().map(|u| u.as_fraction()).sum::<f64>() / n.max(1.0);
        let peak = samples
            .iter()
            .copied()
            .fold(Utilization::IDLE, Utilization::max);
        let profile = Profile::from_samples(&samples, sample_period)?;
        Ok((
            profile,
            QueueStats {
                arrivals,
                completions,
                max_queue_len,
                mean_utilization: Utilization::saturating_from_fraction(mean),
                peak_utilization: peak,
            },
        ))
    }

    fn occupancy(&self, busy: u32) -> Utilization {
        Utilization::saturating_from_fraction(f64::from(busy) / f64::from(self.servers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_utilization_tracks_offered_load() {
        for rho in [0.2, 0.45, 0.7] {
            let q = MmcQueue::new(64, rho * 64.0, 1.0).unwrap();
            let mut rng = SimRng::seed(11);
            let (_, stats) = q
                .generate(
                    SimDuration::from_mins(120),
                    SimDuration::from_secs(1),
                    &mut rng,
                )
                .unwrap();
            assert!(
                (stats.mean_utilization.as_fraction() - rho).abs() < 0.05,
                "ρ = {rho}: measured {}",
                stats.mean_utilization
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let q = MmcQueue::new(32, 16.0, 1.0).unwrap();
        let run = |seed: u64| {
            let mut rng = SimRng::seed(seed);
            q.generate(
                SimDuration::from_mins(10),
                SimDuration::from_secs(1),
                &mut rng,
            )
            .unwrap()
        };
        let (p1, s1) = run(5);
        let (p2, s2) = run(5);
        assert_eq!(s1, s2);
        assert_eq!(p1, p2);
        let (_, s3) = run(6);
        assert_ne!(s1.arrivals, s3.arrivals);
    }

    #[test]
    fn profile_has_expected_duration_and_bounds() {
        let q = MmcQueue::new(16, 8.0, 1.0).unwrap();
        let mut rng = SimRng::seed(3);
        let horizon = SimDuration::from_mins(5);
        let (profile, stats) = q
            .generate(horizon, SimDuration::from_secs(1), &mut rng)
            .unwrap();
        assert_eq!(profile.duration(), horizon);
        assert!(stats.peak_utilization.as_fraction() <= 1.0);
        assert!(stats.completions <= stats.arrivals);
    }

    #[test]
    fn for_target_utilization_constructor() {
        let q = MmcQueue::for_target_utilization(
            64,
            Utilization::from_percent(45.0).unwrap(),
            SimDuration::from_secs(1),
        )
        .unwrap();
        assert!((q.offered_load() - 0.45).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(MmcQueue::new(0, 1.0, 1.0).is_err());
        assert!(MmcQueue::new(4, 0.0, 1.0).is_err());
        assert!(MmcQueue::new(4, 1.0, 0.0).is_err());
        assert!(MmcQueue::new(4, 8.0, 1.0).is_err(), "unstable queue");
        assert!(
            MmcQueue::for_target_utilization(4, Utilization::IDLE, SimDuration::from_secs(1))
                .is_err()
        );
        assert!(
            MmcQueue::for_target_utilization(4, Utilization::FULL, SimDuration::from_secs(1))
                .is_err()
        );
    }

    #[test]
    fn utilization_varies_over_time() {
        let q = MmcQueue::new(16, 6.0, 0.5).unwrap();
        let mut rng = SimRng::seed(17);
        let (profile, _) = q
            .generate(
                SimDuration::from_mins(20),
                SimDuration::from_secs(1),
                &mut rng,
            )
            .unwrap();
        let levels: std::collections::BTreeSet<u64> = (0..1200)
            .map(|s| {
                let at = SimInstant::ZERO + SimDuration::from_secs(s);
                (profile.target(at).as_fraction() * 16.0).round() as u64
            })
            .collect();
        assert!(
            levels.len() > 3,
            "occupancy should fluctuate, saw {levels:?}"
        );
    }
}
