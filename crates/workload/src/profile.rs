//! Piecewise target-utilization profiles.

use core::fmt;

use leakctl_units::{QuantityError, SimDuration, SimInstant, Utilization};

/// Error produced while building a [`Profile`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// A utilization level was invalid.
    Level(QuantityError),
    /// A segment had zero duration.
    ZeroDuration,
    /// The profile has no segments.
    Empty,
    /// Sample import had fewer than one sample or a zero sample period.
    BadSamples,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Level(e) => write!(f, "invalid utilization level: {e}"),
            Self::ZeroDuration => write!(f, "profile segments must have non-zero duration"),
            Self::Empty => write!(f, "profile must contain at least one segment"),
            Self::BadSamples => write!(f, "sample import needs ≥1 sample and a non-zero period"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<QuantityError> for ProfileError {
    fn from(e: QuantityError) -> Self {
        Self::Level(e)
    }
}

/// One piece of a [`Profile`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Segment {
    /// Hold a constant level for a duration.
    Hold {
        /// Target level.
        level: Utilization,
        /// Segment length.
        duration: SimDuration,
    },
    /// Linearly ramp between two levels over a duration.
    Ramp {
        /// Starting level.
        from: Utilization,
        /// Ending level.
        to: Utilization,
        /// Segment length.
        duration: SimDuration,
    },
}

impl Segment {
    fn duration(&self) -> SimDuration {
        match self {
            Self::Hold { duration, .. } | Self::Ramp { duration, .. } => *duration,
        }
    }

    fn level_at(&self, offset: SimDuration) -> Utilization {
        match self {
            Self::Hold { level, .. } => *level,
            Self::Ramp { from, to, duration } => {
                let t = offset.as_secs_f64() / duration.as_secs_f64();
                from.lerp(*to, t)
            }
        }
    }
}

/// A piecewise target-utilization profile.
///
/// Profiles describe the *target* (average) utilization the workload
/// should present over time; [`LoadGen`](crate::LoadGen) turns a target
/// into the instantaneous on/off pattern the platform executes.
///
/// Time past the end of the profile holds the final level, so an
/// experiment harness can safely run cool-down phases longer than the
/// profile itself.
///
/// # Example
///
/// ```
/// use leakctl_units::{SimDuration, SimInstant};
/// use leakctl_workload::Profile;
///
/// # fn main() -> Result<(), leakctl_workload::ProfileError> {
/// let p = Profile::builder()
///     .hold_percent(25.0, SimDuration::from_mins(30))?
///     .hold_percent(100.0, SimDuration::from_mins(30))?
///     .build();
/// assert_eq!(p.duration(), SimDuration::from_mins(60));
/// let at = SimInstant::ZERO + SimDuration::from_mins(45);
/// assert!((p.target(at).as_percent() - 100.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Profile {
    segments: Vec<Segment>,
    duration: SimDuration,
}

impl Profile {
    /// Starts a [`ProfileBuilder`].
    #[must_use]
    pub fn builder() -> ProfileBuilder {
        ProfileBuilder::default()
    }

    /// A constant-level profile.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::ZeroDuration`] for an empty duration.
    pub fn constant(level: Utilization, duration: SimDuration) -> Result<Self, ProfileError> {
        Self::builder().hold(level, duration)?.build_checked()
    }

    /// An idle profile (0 % for `duration`).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::ZeroDuration`] for an empty duration.
    pub fn idle(duration: SimDuration) -> Result<Self, ProfileError> {
        Self::constant(Utilization::IDLE, duration)
    }

    /// Imports a profile from equally spaced samples (`period` apart);
    /// each sample holds until the next. Used to wrap queueing-model
    /// output and recorded traces.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::BadSamples`] for an empty sample list or
    /// zero period.
    pub fn from_samples(
        samples: &[Utilization],
        period: SimDuration,
    ) -> Result<Self, ProfileError> {
        if samples.is_empty() || period.is_zero() {
            return Err(ProfileError::BadSamples);
        }
        let mut b = Self::builder();
        for &s in samples {
            b = b.hold(s, period)?;
        }
        b.build_checked()
    }

    /// Total profile duration.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// The target level at `at`; times beyond the end hold the final
    /// level.
    #[must_use]
    pub fn target(&self, at: SimInstant) -> Utilization {
        let mut offset = SimDuration::from_millis(at.as_millis());
        for seg in &self.segments {
            if offset < seg.duration() {
                return seg.level_at(offset);
            }
            offset = offset.saturating_sub(seg.duration());
        }
        match self.segments.last() {
            Some(Segment::Hold { level, .. }) => *level,
            Some(Segment::Ramp { to, .. }) => *to,
            None => Utilization::IDLE,
        }
    }

    /// The time-weighted mean target over the whole profile, computed
    /// analytically from the segments.
    #[must_use]
    pub fn mean_target(&self) -> Utilization {
        if self.duration.is_zero() {
            return Utilization::IDLE;
        }
        let weighted: f64 = self
            .segments
            .iter()
            .map(|seg| {
                let d = seg.duration().as_secs_f64();
                match seg {
                    Segment::Hold { level, .. } => level.as_fraction() * d,
                    Segment::Ramp { from, to, .. } => {
                        0.5 * (from.as_fraction() + to.as_fraction()) * d
                    }
                }
            })
            .sum();
        Utilization::saturating_from_fraction(weighted / self.duration.as_secs_f64())
    }

    /// The maximum target level reached anywhere in the profile.
    #[must_use]
    pub fn max_target(&self) -> Utilization {
        self.segments
            .iter()
            .map(|seg| match seg {
                Segment::Hold { level, .. } => *level,
                Segment::Ramp { from, to, .. } => from.max(*to),
            })
            .fold(Utilization::IDLE, Utilization::max)
    }

    /// The segments making up the profile.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Appends another profile after this one.
    #[must_use]
    pub fn then(mut self, other: Profile) -> Profile {
        self.segments.extend(other.segments);
        self.duration += other.duration;
        self
    }
}

/// Builder for [`Profile`].
#[derive(Debug, Default)]
pub struct ProfileBuilder {
    segments: Vec<Segment>,
    duration: SimDuration,
}

impl ProfileBuilder {
    /// Appends a constant-level segment.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::ZeroDuration`] for an empty duration.
    pub fn hold(mut self, level: Utilization, duration: SimDuration) -> Result<Self, ProfileError> {
        if duration.is_zero() {
            return Err(ProfileError::ZeroDuration);
        }
        self.segments.push(Segment::Hold { level, duration });
        self.duration += duration;
        Ok(self)
    }

    /// Appends a constant-level segment given in percent.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Level`] for an out-of-range percentage
    /// and [`ProfileError::ZeroDuration`] for an empty duration.
    pub fn hold_percent(self, percent: f64, duration: SimDuration) -> Result<Self, ProfileError> {
        let level = Utilization::from_percent(percent)?;
        self.hold(level, duration)
    }

    /// Appends a linear ramp segment.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::ZeroDuration`] for an empty duration.
    pub fn ramp(
        mut self,
        from: Utilization,
        to: Utilization,
        duration: SimDuration,
    ) -> Result<Self, ProfileError> {
        if duration.is_zero() {
            return Err(ProfileError::ZeroDuration);
        }
        self.segments.push(Segment::Ramp { from, to, duration });
        self.duration += duration;
        Ok(self)
    }

    /// Appends a linear ramp given in percent.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Level`] for out-of-range percentages and
    /// [`ProfileError::ZeroDuration`] for an empty duration.
    pub fn ramp_percent(
        self,
        from_percent: f64,
        to_percent: f64,
        duration: SimDuration,
    ) -> Result<Self, ProfileError> {
        let from = Utilization::from_percent(from_percent)?;
        let to = Utilization::from_percent(to_percent)?;
        self.ramp(from, to, duration)
    }

    /// Finalizes the profile.
    ///
    /// # Panics
    ///
    /// Panics when no segment was added; use [`Self::build_checked`] to
    /// get a `Result` instead.
    #[must_use]
    pub fn build(self) -> Profile {
        self.build_checked().expect("profile must not be empty")
    }

    /// Finalizes the profile, returning an error for an empty builder.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Empty`] when no segment was added.
    pub fn build_checked(self) -> Result<Profile, ProfileError> {
        if self.segments.is_empty() {
            return Err(ProfileError::Empty);
        }
        Ok(Profile {
            segments: self.segments,
            duration: self.duration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(mins: f64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs_f64(mins * 60.0)
    }

    #[test]
    fn hold_levels() {
        let p = Profile::builder()
            .hold_percent(10.0, SimDuration::from_mins(10))
            .unwrap()
            .hold_percent(90.0, SimDuration::from_mins(10))
            .unwrap()
            .build();
        assert!((p.target(at(5.0)).as_percent() - 10.0).abs() < 1e-9);
        assert!((p.target(at(15.0)).as_percent() - 90.0).abs() < 1e-9);
        assert_eq!(p.duration(), SimDuration::from_mins(20));
        assert_eq!(p.segments().len(), 2);
    }

    #[test]
    fn ramp_interpolates() {
        let p = Profile::builder()
            .ramp_percent(0.0, 100.0, SimDuration::from_mins(10))
            .unwrap()
            .build();
        assert!((p.target(at(2.5)).as_percent() - 25.0).abs() < 1e-9);
        assert!((p.target(at(7.5)).as_percent() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn past_end_holds_final_level() {
        let hold = Profile::constant(
            Utilization::from_percent(30.0).unwrap(),
            SimDuration::from_mins(5),
        )
        .unwrap();
        assert!((hold.target(at(60.0)).as_percent() - 30.0).abs() < 1e-9);
        let ramp = Profile::builder()
            .ramp_percent(0.0, 80.0, SimDuration::from_mins(5))
            .unwrap()
            .build();
        assert!((ramp.target(at(60.0)).as_percent() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn mean_and_max_targets() {
        let p = Profile::builder()
            .hold_percent(0.0, SimDuration::from_mins(10))
            .unwrap()
            .hold_percent(100.0, SimDuration::from_mins(10))
            .unwrap()
            .ramp_percent(100.0, 0.0, SimDuration::from_mins(20))
            .unwrap()
            .build();
        // (0·10 + 100·10 + 50·20) / 40 = 50 %.
        assert!((p.mean_target().as_percent() - 50.0).abs() < 1e-9);
        assert!(p.max_target().is_full());
    }

    #[test]
    fn from_samples_round_trip() {
        let samples: Vec<Utilization> = [0.1, 0.5, 0.9]
            .iter()
            .map(|&f| Utilization::from_fraction(f).unwrap())
            .collect();
        let p = Profile::from_samples(&samples, SimDuration::from_secs(1)).unwrap();
        assert_eq!(p.duration(), SimDuration::from_secs(3));
        assert!((p.target(SimInstant::from_millis(1_500)).as_fraction() - 0.5).abs() < 1e-9);
        assert!(Profile::from_samples(&[], SimDuration::from_secs(1)).is_err());
        assert!(Profile::from_samples(&samples, SimDuration::ZERO).is_err());
    }

    #[test]
    fn then_concatenates() {
        let a = Profile::constant(Utilization::FULL, SimDuration::from_mins(1)).unwrap();
        let b = Profile::idle(SimDuration::from_mins(2)).unwrap();
        let c = a.then(b);
        assert_eq!(c.duration(), SimDuration::from_mins(3));
        assert!(c.target(at(0.5)).is_full());
        assert!(c.target(at(2.0)).is_idle());
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            Profile::builder().hold_percent(120.0, SimDuration::from_secs(1)),
            Err(ProfileError::Level(_))
        ));
        assert!(matches!(
            Profile::builder().hold_percent(50.0, SimDuration::ZERO),
            Err(ProfileError::ZeroDuration)
        ));
        assert!(matches!(
            Profile::builder().build_checked(),
            Err(ProfileError::Empty)
        ));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn build_empty_panics() {
        let _ = Profile::builder().build();
    }

    #[test]
    fn error_display() {
        assert!(ProfileError::Empty.to_string().contains("at least one"));
        assert!(ProfileError::ZeroDuration.to_string().contains("non-zero"));
        assert!(ProfileError::BadSamples.to_string().contains("sample"));
    }
}
