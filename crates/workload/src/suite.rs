//! The paper's four 80-minute controller test workloads (Table I).

use leakctl_sim::SimRng;
use leakctl_units::{SimDuration, Utilization};

use crate::profile::Profile;
use crate::queueing::{MmcQueue, QueueStats};

/// Duration of every benchmark in the suite.
pub const TEST_DURATION: SimDuration = SimDuration::from_mins(80);

/// High plateau used by Test-2 (percent).
pub const TEST2_HIGH: f64 = 90.0;

/// Low plateau used by Test-2 (percent).
pub const TEST2_LOW: f64 = 10.0;

/// **Test-1** — "ramps up and down from 0 % to 100 % utilization to test
/// how the controller reacts to gradual changes": a 40-minute linear
/// rise followed by a 40-minute linear fall.
#[must_use]
pub fn test1() -> Profile {
    Profile::builder()
        .ramp_percent(0.0, 100.0, SimDuration::from_mins(40))
        .expect("static profile is valid")
        .ramp_percent(100.0, 0.0, SimDuration::from_mins(40))
        .expect("static profile is valid")
        .build()
}

/// **Test-2** — "different periods (5, 10 and 15 minutes) between high
/// and low utilization values to test controller reaction against sudden
/// changes": plateaus alternating between 90 % and 10 % with period
/// lengths 5 → 10 → 15 → 5 → 10 minutes, starting high.
#[must_use]
pub fn test2() -> Profile {
    let mut b = Profile::builder();
    let mut high = true;
    // 5+5+10+10+15+15+5+5+10 = 80 minutes.
    for mins in [5u64, 5, 10, 10, 15, 15, 5, 5, 10] {
        let level = if high { TEST2_HIGH } else { TEST2_LOW };
        b = b
            .hold_percent(level, SimDuration::from_mins(mins))
            .expect("static profile is valid");
        high = !high;
    }
    b.build()
}

/// **Test-3** — "changes utilization values every 5 minutes to test
/// reaction against sudden and frequent changes": sixteen 5-minute
/// plateaus at a fixed pseudo-random sequence of levels spanning the
/// full range.
#[must_use]
pub fn test3() -> Profile {
    const LEVELS: [f64; 16] = [
        10.0, 75.0, 30.0, 100.0, 20.0, 60.0, 90.0, 40.0, 5.0, 85.0, 50.0, 25.0, 95.0, 15.0, 70.0,
        45.0,
    ];
    let mut b = Profile::builder();
    for pct in LEVELS {
        b = b
            .hold_percent(pct, SimDuration::from_mins(5))
            .expect("static profile is valid");
    }
    b.build()
}

/// **Test-4** — "utilization value follows a statistical distribution of
/// Poisson arrival times and exponential service times that emulates a
/// shell workload": an M/M/64 queue at ≈45 % offered load with 1-second
/// mean service time, sampled every second.
///
/// Deterministic for a given `seed`.
#[must_use]
pub fn test4(seed: u64) -> (Profile, QueueStats) {
    let queue = MmcQueue::for_target_utilization(
        64,
        Utilization::from_percent(45.0).expect("static level is valid"),
        SimDuration::from_secs(1),
    )
    .expect("static queue parameters are valid");
    let mut rng = SimRng::seed(seed);
    queue
        .generate(TEST_DURATION, SimDuration::from_secs(1), &mut rng)
        .expect("static generation parameters are valid")
}

/// All four tests, labeled as in Table I. `seed` feeds Test-4's
/// stochastic generator.
#[must_use]
pub fn all(seed: u64) -> Vec<(&'static str, Profile)> {
    vec![
        ("Test-1", test1()),
        ("Test-2", test2()),
        ("Test-3", test3()),
        ("Test-4", test4(seed).0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakctl_units::SimInstant;

    fn at(mins: f64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs_f64(mins * 60.0)
    }

    #[test]
    fn all_tests_last_80_minutes() {
        for (name, profile) in all(42) {
            assert_eq!(
                profile.duration(),
                TEST_DURATION,
                "{name} must be 80 minutes"
            );
        }
    }

    #[test]
    fn test1_peaks_in_the_middle() {
        let p = test1();
        assert!(p.target(at(0.0)).is_idle());
        assert!(p.target(at(40.0)).is_full());
        assert!((p.target(at(20.0)).as_percent() - 50.0).abs() < 1e-6);
        assert!((p.target(at(60.0)).as_percent() - 50.0).abs() < 1e-6);
        assert!((p.target(at(79.99)).as_percent()) < 1.0);
    }

    #[test]
    fn test2_alternates_with_growing_periods() {
        let p = test2();
        assert!((p.target(at(2.0)).as_percent() - TEST2_HIGH).abs() < 1e-9);
        assert!((p.target(at(7.0)).as_percent() - TEST2_LOW).abs() < 1e-9);
        assert!((p.target(at(15.0)).as_percent() - TEST2_HIGH).abs() < 1e-9);
        assert!((p.target(at(25.0)).as_percent() - TEST2_LOW).abs() < 1e-9);
        assert!((p.target(at(35.0)).as_percent() - TEST2_HIGH).abs() < 1e-9);
        assert!((p.target(at(50.0)).as_percent() - TEST2_LOW).abs() < 1e-9);
    }

    #[test]
    fn test3_changes_every_five_minutes() {
        let p = test3();
        let mut changes = 0;
        let mut prev = p.target(at(0.0));
        for k in 1..16 {
            let cur = p.target(at(f64::from(k) * 5.0 + 0.1));
            if (cur.as_percent() - prev.as_percent()).abs() > 1e-9 {
                changes += 1;
            }
            prev = cur;
        }
        assert_eq!(changes, 15, "every 5-minute boundary changes the level");
    }

    #[test]
    fn test4_reproducible_and_near_target() {
        let (p1, s1) = test4(7);
        let (p2, s2) = test4(7);
        assert_eq!(s1, s2);
        assert_eq!(p1, p2);
        assert!(
            (s1.mean_utilization.as_fraction() - 0.45).abs() < 0.08,
            "mean {} should be near the 45 % target",
            s1.mean_utilization
        );
    }

    #[test]
    fn suite_mean_levels_are_moderate() {
        // Table I's energy spread implies mid-range average utilization.
        for (name, profile) in all(42) {
            let mean = profile.mean_target().as_percent();
            assert!((25.0..=65.0).contains(&mean), "{name}: mean target {mean}%");
        }
    }
}
