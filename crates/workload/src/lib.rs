//! Workload synthesis for the `leakctl` server simulator.
//!
//! Reproduces the paper's load-generation stack:
//!
//! - [`Profile`] — piecewise target-utilization profiles (holds and
//!   ramps) with a builder, plus sampled-trace import,
//! - [`LoadGen`] — the dynamic load-synthesis tool: it realizes a target
//!   utilization by *duty-cycling between 100 % and idle* (PWM), evenly
//!   spread across cores, exactly as the paper describes — this is what
//!   produces the fast thermal oscillations of Fig. 1(b),
//! - [`suite`] — the four 80-minute benchmark profiles of Table I,
//! - [`MmcQueue`] — a Poisson-arrival / exponential-service multi-server
//!   queue (the stochastic model behind Test-4's "shell workload",
//!   after Meisner & Wenisch's stochastic queueing simulation).
//!
//! # Example
//!
//! ```
//! use leakctl_units::{SimDuration, SimInstant};
//! use leakctl_workload::{LoadGen, Profile, PwmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let profile = Profile::builder()
//!     .hold_percent(50.0, SimDuration::from_mins(10))?
//!     .ramp_percent(50.0, 100.0, SimDuration::from_mins(5))?
//!     .build();
//! let gen = LoadGen::new(profile, PwmConfig::default());
//! let mid = SimInstant::ZERO + SimDuration::from_mins(5);
//! assert!((gen.target(mid).as_percent() - 50.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod loadgen;
mod profile;
mod queueing;
pub mod suite;

pub use loadgen::{LoadGen, PwmConfig};
pub use profile::{Profile, ProfileBuilder, ProfileError, Segment};
pub use queueing::{MmcQueue, QueueStats};
