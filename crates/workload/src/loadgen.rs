//! `LoadGen`: dynamic load synthesis by PWM duty-cycling.

use leakctl_units::{SimDuration, SimInstant, Utilization};

use crate::profile::Profile;

/// Configuration of `LoadGen`'s pulse-width modulation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PwmConfig {
    /// PWM window length. Within each window the load is *on* (100 %)
    /// for `target × period` and idle for the rest, matching the paper's
    /// duty-cycling "at a fine granularity".
    pub period: SimDuration,
    /// Activity factor while *on*: 1.0 corresponds to the paper's core
    /// algorithm that "maximally stuffs the instruction pipes". Lower
    /// values model less switching-intensive code.
    pub intensity: f64,
}

impl PwmConfig {
    /// Creates a config after validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics for a zero period or an intensity outside `(0, 1]`.
    #[must_use]
    pub fn new(period: SimDuration, intensity: f64) -> Self {
        assert!(!period.is_zero(), "PWM period must be non-zero");
        assert!(
            intensity > 0.0 && intensity <= 1.0,
            "intensity must be in (0, 1]"
        );
        Self { period, intensity }
    }
}

impl Default for PwmConfig {
    /// 40 s window at full intensity — fast enough to track the paper's
    /// 1-second utilization polling, slow enough that the die's fast
    /// thermal mode (tens of seconds) shows the 5–8 °C oscillations of
    /// Fig. 1(b).
    fn default() -> Self {
        Self::new(SimDuration::from_secs(40), 1.0)
    }
}

/// The paper's customized dynamic load-synthesis tool.
///
/// `LoadGen` realizes a [`Profile`]'s target utilization by duty-cycling
/// every hardware thread between full load and idle inside fixed PWM
/// windows, evenly spreading work across cores. Platform code samples
/// [`LoadGen::instantaneous`] for the switching activity that drives
/// dynamic power, and [`LoadGen::target`] for what `sar`/`mpstat`-style
/// utilization polling reports when averaged.
///
/// # Example
///
/// ```
/// use leakctl_units::{SimDuration, SimInstant, Utilization};
/// use leakctl_workload::{LoadGen, Profile, PwmConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let profile = Profile::constant(
///     Utilization::from_percent(25.0)?,
///     SimDuration::from_mins(30),
/// )?;
/// let gen = LoadGen::new(profile, PwmConfig::default());
/// // First quarter of each 40 s window is on, the rest idle.
/// let t_on = SimInstant::ZERO + SimDuration::from_secs(5);
/// let t_off = SimInstant::ZERO + SimDuration::from_secs(20);
/// assert!(gen.instantaneous(t_on).is_full());
/// assert!(gen.instantaneous(t_off).is_idle());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoadGen {
    profile: Profile,
    pwm: PwmConfig,
}

impl LoadGen {
    /// Wraps a target profile with a PWM realization.
    #[must_use]
    pub fn new(profile: Profile, pwm: PwmConfig) -> Self {
        Self { profile, pwm }
    }

    /// The target (average) utilization at `at`.
    #[must_use]
    pub fn target(&self, at: SimInstant) -> Utilization {
        self.profile.target(at)
    }

    /// The instantaneous switching level at `at`: the duty-cycled on/off
    /// value scaled by the configured intensity.
    #[must_use]
    pub fn instantaneous(&self, at: SimInstant) -> Utilization {
        let target = self.profile.target(at);
        let period_ms = self.pwm.period.as_millis();
        let phase_ms = at.as_millis() % period_ms;
        let on_ms = (target.as_fraction() * period_ms as f64).round() as u64;
        if phase_ms < on_ms {
            Utilization::saturating_from_fraction(self.pwm.intensity)
        } else {
            Utilization::IDLE
        }
    }

    /// Average of [`Self::instantaneous`] over `[from, from + window)`,
    /// sampled at millisecond-exact PWM edges. This is what a
    /// `sar`-style poller reports for the window.
    #[must_use]
    pub fn average_over(&self, from: SimInstant, window: SimDuration) -> Utilization {
        if window.is_zero() {
            return self.instantaneous(from);
        }
        // Integrate exactly over PWM windows by stepping through edges.
        let period_ms = self.pwm.period.as_millis();
        let start = from.as_millis();
        let end = start + window.as_millis();
        let mut on_time = 0u64;
        let mut t = start;
        while t < end {
            let window_start = (t / period_ms) * period_ms;
            let target = self.profile.target(SimInstant::from_millis(window_start));
            let on_ms = (target.as_fraction() * period_ms as f64).round() as u64;
            let on_end = window_start + on_ms;
            let window_end = window_start + period_ms;
            let seg_end = end.min(window_end);
            if t < on_end {
                on_time += on_end.min(seg_end) - t;
            }
            t = seg_end;
        }
        Utilization::saturating_from_fraction(
            self.pwm.intensity * on_time as f64 / window.as_millis() as f64,
        )
    }

    /// The wrapped profile.
    #[must_use]
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The PWM configuration.
    #[must_use]
    pub fn pwm(&self) -> PwmConfig {
        self.pwm
    }

    /// Total duration of the wrapped profile.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.profile.duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_gen(percent: f64) -> LoadGen {
        LoadGen::new(
            Profile::constant(
                Utilization::from_percent(percent).unwrap(),
                SimDuration::from_hours(2),
            )
            .unwrap(),
            PwmConfig::default(),
        )
    }

    #[test]
    fn duty_cycle_partitions_window() {
        let gen = constant_gen(50.0);
        let period = gen.pwm().period.as_millis();
        let mut on = 0u64;
        for ms in (0..period).step_by(100) {
            if gen.instantaneous(SimInstant::from_millis(ms)).is_full() {
                on += 100;
            }
        }
        assert_eq!(on, period / 2);
    }

    #[test]
    fn average_matches_target_over_full_windows() {
        for pct in [10.0, 25.0, 40.0, 50.0, 60.0, 75.0, 90.0, 100.0] {
            let gen = constant_gen(pct);
            let avg = gen.average_over(SimInstant::ZERO, SimDuration::from_mins(10));
            assert!(
                (avg.as_percent() - pct).abs() < 0.5,
                "target {pct}%, averaged {avg}"
            );
        }
    }

    #[test]
    fn average_over_partial_window() {
        let gen = constant_gen(50.0);
        // First 20 s of a 40 s window at 50 % duty: fully on.
        let avg = gen.average_over(SimInstant::ZERO, SimDuration::from_secs(20));
        assert!(avg.is_full(), "got {avg}");
        // Second half: fully off.
        let avg2 = gen.average_over(
            SimInstant::ZERO + SimDuration::from_secs(20),
            SimDuration::from_secs(20),
        );
        assert!(avg2.is_idle(), "got {avg2}");
    }

    #[test]
    fn idle_and_full_have_no_switching() {
        let idle = constant_gen(0.0);
        let full = constant_gen(100.0);
        for s in 0..120 {
            let at = SimInstant::ZERO + SimDuration::from_secs(s);
            assert!(idle.instantaneous(at).is_idle());
            assert!(full.instantaneous(at).is_full());
        }
    }

    #[test]
    fn intensity_scales_on_level() {
        let gen = LoadGen::new(
            Profile::constant(Utilization::FULL, SimDuration::from_mins(1)).unwrap(),
            PwmConfig::new(SimDuration::from_secs(40), 0.7),
        );
        let level = gen.instantaneous(SimInstant::ZERO);
        assert!((level.as_fraction() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn zero_window_average_is_instantaneous() {
        let gen = constant_gen(50.0);
        let at = SimInstant::from_millis(1_000);
        assert_eq!(
            gen.average_over(at, SimDuration::ZERO),
            gen.instantaneous(at)
        );
    }

    #[test]
    fn target_tracks_profile() {
        let profile = Profile::builder()
            .hold_percent(20.0, SimDuration::from_mins(5))
            .unwrap()
            .hold_percent(80.0, SimDuration::from_mins(5))
            .unwrap()
            .build();
        let gen = LoadGen::new(profile, PwmConfig::default());
        assert!((gen.target(SimInstant::ZERO).as_percent() - 20.0).abs() < 1e-9);
        let later = SimInstant::ZERO + SimDuration::from_mins(7);
        assert!((gen.target(later).as_percent() - 80.0).abs() < 1e-9);
        assert_eq!(gen.duration(), SimDuration::from_mins(10));
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_period_rejected() {
        let _ = PwmConfig::new(SimDuration::ZERO, 1.0);
    }

    #[test]
    #[should_panic(expected = "intensity")]
    fn bad_intensity_rejected() {
        let _ = PwmConfig::new(SimDuration::from_secs(1), 0.0);
    }
}
