//! Fixed-rate activity helper.

use leakctl_units::{SimDuration, SimInstant};

/// Generates the firing instants of a fixed-period activity (telemetry
/// polls, controller decision epochs, workload PWM edges).
///
/// Behaves like an infinite iterator over instants `start, start + p,
/// start + 2p, …`, but also supports querying and fast-forwarding, which
/// the simulation loop needs when it jumps over idle stretches.
///
/// # Example
///
/// ```
/// use leakctl_sim::Periodic;
/// use leakctl_units::{SimDuration, SimInstant};
///
/// let mut poll = Periodic::new(SimInstant::ZERO, SimDuration::from_secs(10));
/// assert_eq!(poll.next_fire().as_secs_f64(), 0.0);
/// poll.advance();
/// assert_eq!(poll.next_fire().as_secs_f64(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Periodic {
    next: SimInstant,
    period: SimDuration,
}

impl Periodic {
    /// Creates an activity that first fires at `start` and then every
    /// `period`.
    ///
    /// # Panics
    ///
    /// Panics when `period` is zero — a zero-period activity would stall
    /// the simulation loop.
    #[must_use]
    pub fn new(start: SimInstant, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "Periodic period must be non-zero");
        Self {
            next: start,
            period,
        }
    }

    /// The instant of the next firing.
    #[inline]
    #[must_use]
    pub fn next_fire(&self) -> SimInstant {
        self.next
    }

    /// The configured period.
    #[inline]
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// `true` when the activity is due at or before `now`.
    #[inline]
    #[must_use]
    pub fn is_due(&self, now: SimInstant) -> bool {
        self.next <= now
    }

    /// Consumes one firing, moving to the next period boundary.
    pub fn advance(&mut self) {
        self.next += self.period;
    }

    /// Fires as many times as are due at `now`, returning how many
    /// firings elapsed (0 when not yet due).
    ///
    /// Use this after a long integration step to learn how many polls
    /// were crossed.
    pub fn catch_up(&mut self, now: SimInstant) -> u64 {
        let mut fired = 0;
        while self.next <= now {
            self.next += self.period;
            fired += 1;
        }
        fired
    }

    /// Re-anchors the activity to first fire at `start`.
    pub fn reset(&mut self, start: SimInstant) {
        self.next = start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimInstant {
        SimInstant::from_millis(ms)
    }

    #[test]
    fn fires_on_schedule() {
        let mut p = Periodic::new(at(0), SimDuration::from_secs(1));
        assert!(p.is_due(at(0)));
        p.advance();
        assert!(!p.is_due(at(999)));
        assert!(p.is_due(at(1_000)));
    }

    #[test]
    fn catch_up_counts_missed_firings() {
        let mut p = Periodic::new(at(0), SimDuration::from_secs(10));
        let fired = p.catch_up(at(35_000));
        assert_eq!(fired, 4); // t = 0, 10, 20, 30 s
        assert_eq!(p.next_fire(), at(40_000));
        assert_eq!(p.catch_up(at(35_000)), 0);
    }

    #[test]
    fn reset_reanchors() {
        let mut p = Periodic::new(at(0), SimDuration::from_secs(5));
        p.catch_up(at(60_000));
        p.reset(at(61_000));
        assert_eq!(p.next_fire(), at(61_000));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let _ = Periodic::new(at(0), SimDuration::ZERO);
    }
}
