//! Deterministic random-number generation.
//!
//! Simulation runs must be exactly reproducible from a seed, including
//! across releases of third-party crates, so the generator itself —
//! xoshiro256++ seeded through SplitMix64 — is implemented here rather
//! than taken from `rand`. The type still implements [`rand::RngCore`],
//! so the distribution machinery from `rand` works on top of it.

use rand::{Error, RngCore, SeedableRng};

/// A seedable, forkable xoshiro256++ generator.
///
/// [`SimRng::fork`] derives an independent child stream, letting each
/// simulation component (sensor noise, workload arrivals, …) own its own
/// generator so adding randomness to one component never perturbs the
/// draws seen by another.
///
/// # Example
///
/// ```
/// use leakctl_sim::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
///
/// let mut child = a.fork("sensor-noise");
/// let x: f64 = child.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator identified by `label`.
    ///
    /// The child stream depends on the parent's *current* state and the
    /// label, and advances the parent once, so repeated forks with the
    /// same label yield different streams.
    #[must_use]
    pub fn fork(&mut self, label: &str) -> Self {
        // Mix the label into a 64-bit tag with FNV-1a.
        let mut tag: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            tag ^= u64::from(b);
            tag = tag.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let parent_draw = self.next_u64();
        Self::seed(parent_draw ^ tag)
    }

    /// Draws a `f64` uniformly from `[0, 1)`.
    #[must_use]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws from the standard normal distribution via Box–Muller.
    #[must_use]
    pub fn next_gaussian(&mut self) -> f64 {
        // Rejection-free polar-less form; u1 > 0 guaranteed by the +1 in
        // the mantissa trick below.
        let u1 = (self.next_u64() >> 11) as f64 + 1.0;
        let u1 = u1 * (1.0 / (1u64 << 53) as f64); // (0, 1]
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fills `out` with standard-normal draws, consuming the stream
    /// exactly as that many [`SimRng::next_gaussian`] calls would — the
    /// produced values are bit-identical, so switching a consumer to
    /// block generation never perturbs a seeded experiment.
    ///
    /// The win over per-call draws is instruction-level parallelism:
    /// the serially dependent integer-state updates are issued for a
    /// whole chunk first, and the independent `ln`/`sqrt`/`cos`
    /// transforms then pipeline across iterations instead of waiting on
    /// the generator chain. Telemetry uses this to amortize sensor
    /// noise, the dominant cost of a poll.
    pub fn fill_gaussian(&mut self, out: &mut [f64]) {
        const CHUNK: usize = 16;
        let mut raw = [0u64; 2 * CHUNK];
        for block in out.chunks_mut(CHUNK) {
            // Phase 1: the dependent chain of raw draws (two per
            // sample, in the same order as next_gaussian).
            for r in raw[..2 * block.len()].iter_mut() {
                *r = self.next_u64();
            }
            // Phase 2: independent transforms.
            for (i, sample) in block.iter_mut().enumerate() {
                let u1 = (raw[2 * i] >> 11) as f64 + 1.0;
                let u1 = u1 * (1.0 / (1u64 << 53) as f64); // (0, 1]
                let u2 = (raw[2 * i + 1] >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                *sample = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// Draws from the exponential distribution with the given rate
    /// (events per unit time).
    ///
    /// # Panics
    ///
    /// Panics when `rate` is not strictly positive.
    #[must_use]
    pub fn next_exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.next_f64(); // (0, 1]
        -u.ln() / rate
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::seed(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let mut parent1 = SimRng::seed(99);
        let mut parent2 = SimRng::seed(99);
        let mut c1 = parent1.fork("noise");
        let mut c2 = parent2.fork("noise");
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // A different label yields a different stream.
        let mut parent3 = SimRng::seed(99);
        let mut c3 = parent3.fork("arrivals");
        let matches = (0..32)
            .filter(|_| SimRng::seed(99).fork("noise").next_u64() == c3.next_u64())
            .count();
        assert!(matches < 4);
    }

    #[test]
    fn repeated_forks_same_label_differ() {
        let mut parent = SimRng::seed(5);
        let mut a = parent.fork("x");
        let mut b = parent.fork("x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_gaussian_bit_identical_to_sequential_draws() {
        // Across chunk boundaries (len > 16) and for short fills.
        for len in [1usize, 5, 16, 17, 40] {
            let mut a = SimRng::seed(1234);
            let mut b = SimRng::seed(1234);
            let mut block = vec![0.0; len];
            a.fill_gaussian(&mut block);
            for (i, got) in block.iter().enumerate() {
                let want = b.next_gaussian();
                assert_eq!(got.to_bits(), want.to_bits(), "len {len} sample {i}");
            }
            // Generators stay in lockstep afterwards.
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gaussian_moments_plausible() {
        let mut rng = SimRng::seed(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed(13);
        let rate = 0.25;
        let n = 50_000;
        let mean = (0..n).map(|_| rng.next_exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean} too far from 1/rate");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_bad_rate() {
        let _ = SimRng::seed(0).next_exponential(0.0);
    }

    #[test]
    fn works_with_rand_distributions() {
        let mut rng = SimRng::seed(21);
        let x: f64 = rng.gen_range(10.0..20.0);
        assert!((10.0..20.0).contains(&x));
        let b: bool = rng.gen_bool(0.5);
        let _ = b;
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::seed(77);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn seedable_from_seed() {
        let a = SimRng::from_seed(42u64.to_le_bytes());
        let b = SimRng::seed(42);
        assert_eq!(a, b);
    }
}
