//! Bounded in-memory event trace.

use leakctl_units::SimInstant;

/// One annotated trace entry.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: SimInstant,
    /// Which component reported it (e.g. `"lut-controller"`).
    pub source: String,
    /// Free-form message.
    pub message: String,
}

/// A bounded log of annotated simulation events.
///
/// Used by controllers and the platform to leave a human-readable audit
/// trail (fan speed changes, threshold crossings, failsafe activations)
/// that tests can assert on.
///
/// # Example
///
/// ```
/// use leakctl_sim::TraceRecorder;
/// use leakctl_units::SimInstant;
///
/// let mut trace = TraceRecorder::with_capacity(100);
/// trace.record(SimInstant::ZERO, "lut", "fan 3300 -> 2400 RPM");
/// assert_eq!(trace.len(), 1);
/// assert!(trace.entries()[0].message.contains("2400"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    entries: Vec<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// Creates a recorder that keeps at most `capacity` entries; further
    /// records drop the *oldest* entry.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event.
    pub fn record(
        &mut self,
        at: SimInstant,
        source: impl Into<String>,
        message: impl Into<String>,
    ) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
            self.dropped += 1;
        }
        self.entries.push(TraceEntry {
            at,
            source: source.into(),
            message: message.into(),
        });
    }

    /// The retained entries, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many entries were evicted (or rejected by a zero-capacity
    /// recorder).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries emitted by a particular source.
    pub fn from_source<'a>(&'a self, source: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.source == source)
    }

    /// Removes all entries (the drop counter is preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimInstant {
        SimInstant::from_millis(ms)
    }

    #[test]
    fn records_in_order() {
        let mut t = TraceRecorder::with_capacity(10);
        t.record(at(1), "a", "first");
        t.record(at(2), "b", "second");
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0].message, "first");
        assert_eq!(t.entries()[1].at, at(2));
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let mut t = TraceRecorder::with_capacity(2);
        t.record(at(1), "s", "one");
        t.record(at(2), "s", "two");
        t.record(at(3), "s", "three");
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.entries()[0].message, "two");
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut t = TraceRecorder::with_capacity(0);
        t.record(at(1), "s", "gone");
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn filter_by_source() {
        let mut t = TraceRecorder::with_capacity(10);
        t.record(at(1), "lut", "x");
        t.record(at(2), "bang", "y");
        t.record(at(3), "lut", "z");
        let lut: Vec<_> = t.from_source("lut").collect();
        assert_eq!(lut.len(), 2);
        assert_eq!(lut[1].message, "z");
    }

    #[test]
    fn clear_keeps_drop_counter() {
        let mut t = TraceRecorder::with_capacity(1);
        t.record(at(1), "s", "a");
        t.record(at(2), "s", "b");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
