//! Cancellable, deterministic event queue.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use leakctl_units::SimInstant;

/// Handle returned by [`EventQueue::push`]; identifies a scheduled event
/// so it can later be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

/// A priority queue of timestamped events.
///
/// Events pop in increasing time order; events scheduled for the *same*
/// instant pop in insertion (FIFO) order, which keeps multi-component
/// simulations deterministic without relying on hash-map iteration order.
///
/// # Example
///
/// ```
/// use leakctl_sim::EventQueue;
/// use leakctl_units::SimInstant;
///
/// let mut q = EventQueue::new();
/// let h = q.push(SimInstant::from_millis(5), "late");
/// q.push(SimInstant::from_millis(1), "early");
/// q.cancel(h);
/// assert_eq!(q.pop(), Some((SimInstant::from_millis(1), "early")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    at: SimInstant,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at` and returns a cancellation
    /// handle.
    pub fn push(&mut self, at: SimInstant, payload: T) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` when the handle referred to an event that had not
    /// yet fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(handle.0)
    }

    /// The instant of the next live event, if any.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimInstant> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Removes and returns the next live event.
    pub fn pop(&mut self) -> Option<(SimInstant, T)> {
        self.skip_cancelled();
        self.heap.pop().map(|Reverse(e)| (e.at, e.payload))
    }

    /// Removes and returns the next live event only if it fires at or
    /// before `deadline`.
    pub fn pop_before(&mut self, deadline: SimInstant) -> Option<(SimInstant, T)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Number of live (non-cancelled) events still queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` when no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all queued events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.cancelled.remove(&e.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimInstant {
        SimInstant::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(30), 3);
        q.push(at(10), 1);
        q.push(at(20), 2);
        assert_eq!(q.pop(), Some((at(10), 1)));
        assert_eq!(q.pop(), Some((at(20), 2)));
        assert_eq!(q.pop(), Some((at(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(at(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((at(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h = q.push(at(10), "a");
        q.push(at(20), "b");
        assert!(q.cancel(h));
        assert!(!q.cancel(h), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((at(20), "b")));
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q = EventQueue::<u8>::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(at(7), ());
        assert_eq!(q.peek_time(), Some(at(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(at(100), "later");
        assert_eq!(q.pop_before(at(99)), None);
        assert_eq!(q.pop_before(at(100)), Some((at(100), "later")));
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(at(1), 1);
        let h = q.push(at(2), 2);
        q.cancel(h);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancelled_head_skipped_by_peek() {
        let mut q = EventQueue::new();
        let h = q.push(at(1), "dead");
        q.push(at(2), "live");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(at(2)));
        assert_eq!(q.pop(), Some((at(2), "live")));
    }
}
