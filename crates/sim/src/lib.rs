//! Deterministic discrete-event simulation kernel for the `leakctl`
//! workspace.
//!
//! The server digital twin mixes *continuous* dynamics (the RC thermal
//! network) with *discrete* events (telemetry polls every 10 s, DLC-PC
//! utilization polls every 1 s, fan-supply commands, workload phase
//! changes). This crate provides the discrete half:
//!
//! - [`EventQueue`] — a cancellable priority queue of timestamped events
//!   with deterministic FIFO ordering for simultaneous events,
//! - [`Clock`] — the monotonic simulation clock,
//! - [`Periodic`] — an iterator-style helper for fixed-rate activities,
//! - [`SimRng`] — a seedable, forkable xoshiro256++ random-number
//!   generator (implements [`rand::RngCore`]) so every run is exactly
//!   reproducible from its seed,
//! - [`TraceRecorder`] — a bounded in-memory log of annotated events.
//!
//! # Example
//!
//! ```
//! use leakctl_sim::{Clock, EventQueue};
//! use leakctl_units::{SimDuration, SimInstant};
//!
//! let mut clock = Clock::new();
//! let mut queue = EventQueue::new();
//! queue.push(SimInstant::ZERO + SimDuration::from_secs(10), "poll");
//! queue.push(SimInstant::ZERO + SimDuration::from_secs(1), "sar");
//!
//! let (t, what) = queue.pop().unwrap();
//! clock.advance_to(t).unwrap();
//! assert_eq!(what, "sar");
//! assert_eq!(clock.now().as_secs_f64(), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod event;
mod periodic;
mod rng;
mod trace;

pub use clock::{Clock, ClockError};
pub use event::{EventHandle, EventQueue};
pub use periodic::Periodic;
pub use rng::SimRng;
pub use trace::{TraceEntry, TraceRecorder};
