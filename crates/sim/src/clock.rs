//! The monotonic simulation clock.

use core::fmt;

use leakctl_units::{SimDuration, SimInstant};

/// Error returned when attempting to move a [`Clock`] backwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockError {
    now: SimInstant,
    requested: SimInstant,
}

impl fmt::Display for ClockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot move clock backwards from {} to {}",
            self.now, self.requested
        )
    }
}

impl std::error::Error for ClockError {}

/// A monotonic simulation clock.
///
/// The clock only moves forward; [`Clock::advance_to`] rejects attempts
/// to rewind, which catches event-ordering bugs early.
///
/// # Example
///
/// ```
/// use leakctl_sim::Clock;
/// use leakctl_units::SimDuration;
///
/// let mut clock = Clock::new();
/// clock.advance_by(SimDuration::from_secs(5));
/// assert_eq!(clock.now().as_secs_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Clock {
    now: SimInstant,
}

impl Clock {
    /// Creates a clock positioned at [`SimInstant::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock positioned at an arbitrary instant.
    #[must_use]
    pub fn starting_at(now: SimInstant) -> Self {
        Self { now }
    }

    /// The current simulated instant.
    #[inline]
    #[must_use]
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Moves the clock forward to `instant`.
    ///
    /// Advancing to the current instant is a no-op and allowed.
    ///
    /// # Errors
    ///
    /// Returns [`ClockError`] when `instant` is in the past.
    pub fn advance_to(&mut self, instant: SimInstant) -> Result<(), ClockError> {
        if instant < self.now {
            return Err(ClockError {
                now: self.now,
                requested: instant,
            });
        }
        self.now = instant;
        Ok(())
    }

    /// Moves the clock forward by `dt`.
    pub fn advance_by(&mut self, dt: SimDuration) {
        self.now += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Clock::new().now(), SimInstant::ZERO);
    }

    #[test]
    fn advances_forward() {
        let mut c = Clock::new();
        c.advance_by(SimDuration::from_secs(10));
        c.advance_to(SimInstant::from_millis(20_000)).unwrap();
        assert_eq!(c.now().as_secs_f64(), 20.0);
    }

    #[test]
    fn same_instant_is_ok() {
        let mut c = Clock::starting_at(SimInstant::from_millis(500));
        assert!(c.advance_to(SimInstant::from_millis(500)).is_ok());
    }

    #[test]
    fn rejects_rewind() {
        let mut c = Clock::starting_at(SimInstant::from_millis(1_000));
        let err = c.advance_to(SimInstant::from_millis(999)).unwrap_err();
        assert!(err.to_string().contains("backwards"));
        assert_eq!(c.now(), SimInstant::from_millis(1_000));
    }
}
