//! Property-based tests for the controllers.

use leakctl_control::{
    BangBangController, ControlInputs, FanController, LookupTable, LutController, PidController,
    RateLimiter,
};
use leakctl_units::{Celsius, Rpm, SimDuration, SimInstant, Utilization};
use proptest::prelude::*;

fn inputs(at_secs: u64, util: f64, temp: Option<f64>) -> ControlInputs {
    ControlInputs {
        now: SimInstant::from_millis(at_secs * 1_000),
        utilization: Utilization::saturating_from_fraction(util),
        max_cpu_temp: temp.map(Celsius::new),
    }
}

/// Strategy: a valid LUT with ascending breakpoints ending at 100 %.
fn lut_strategy() -> impl Strategy<Value = LookupTable> {
    prop::collection::vec((0.01..0.99f64, 1800.0..4200.0f64), 0..5).prop_map(|mut mids| {
        mids.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        mids.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-6);
        let mut entries: Vec<(Utilization, Rpm)> = mids
            .into_iter()
            .map(|(u, r)| {
                (
                    Utilization::from_fraction(u).expect("valid"),
                    Rpm::new(r.round()),
                )
            })
            .collect();
        entries.push((Utilization::FULL, Rpm::new(2400.0)));
        LookupTable::new(entries).expect("constructed valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LUT lookup always returns one of the table's own speeds.
    #[test]
    fn lut_lookup_closed_over_entries(table in lut_strategy(), u in 0.0..=1.0f64) {
        let speed = table.lookup(Utilization::saturating_from_fraction(u));
        prop_assert!(table.entries().iter().any(|(_, rpm)| *rpm == speed));
    }

    /// The LUT controller never issues two commands within the lockout.
    #[test]
    fn lut_controller_respects_lockout(
        table in lut_strategy(),
        utils in prop::collection::vec(0.0..=1.0f64, 10..200),
        lockout_secs in 10u64..180,
    ) {
        let mut ctl = LutController::new(table, SimDuration::from_secs(lockout_secs));
        let mut last_change: Option<u64> = None;
        for (sec, u) in utils.iter().enumerate() {
            let sec = sec as u64;
            if ctl.decide(&inputs(sec, *u, None)).is_some() {
                if let Some(prev) = last_change {
                    prop_assert!(
                        sec - prev >= lockout_secs,
                        "changes at {prev}s and {sec}s violate the {lockout_secs}s lockout"
                    );
                }
                last_change = Some(sec);
            }
        }
    }

    /// Bang-bang output always stays within [1800, 4200] RPM no matter
    /// the temperature sequence.
    #[test]
    fn bangbang_output_within_limits(
        temps in prop::collection::vec(20.0..110.0f64, 1..100),
    ) {
        let mut ctl = BangBangController::paper_default();
        for (i, t) in temps.iter().enumerate() {
            if let Some(rpm) = ctl.decide(&inputs(i as u64 * 10, 0.5, Some(*t))) {
                prop_assert!(rpm >= Rpm::new(1800.0) && rpm <= Rpm::new(4200.0));
            }
        }
    }

    /// Bang-bang never acts inside its comfort band.
    #[test]
    fn bangbang_silent_in_band(t in 65.0..=75.0f64) {
        let mut ctl = BangBangController::paper_default();
        prop_assert_eq!(ctl.decide(&inputs(0, 0.5, Some(t))), None);
    }

    /// PID output is clamped and quantized for any temperature.
    #[test]
    fn pid_output_clamped_and_quantized(
        temps in prop::collection::vec(0.0..150.0f64, 1..50),
    ) {
        let mut ctl = PidController::paper_tuned();
        for (i, t) in temps.iter().enumerate() {
            if let Some(rpm) = ctl.decide(&inputs(i as u64 * 10, 0.5, Some(*t))) {
                prop_assert!(rpm >= Rpm::new(1800.0) && rpm <= Rpm::new(4200.0));
                prop_assert!((rpm.value() % 100.0).abs() < 1e-9);
            }
        }
    }

    /// Rate limiter: after `record`, `allows` is false strictly inside
    /// the interval and true at/after its end.
    #[test]
    fn rate_limiter_boundary(interval_ms in 1u64..600_000, offset_ms in 0u64..1_200_000) {
        let mut rl = RateLimiter::new(SimDuration::from_millis(interval_ms));
        let start = SimInstant::from_millis(1_000_000);
        rl.record(start);
        let probe = start + SimDuration::from_millis(offset_ms);
        prop_assert_eq!(rl.allows(probe), offset_ms >= interval_ms);
    }
}
