//! The LUT-based controller — the paper's contribution.

use core::fmt;

use leakctl_units::{Rpm, SimDuration, Utilization};

use crate::ratelimit::RateLimiter;
use crate::traits::{ControlInputs, FanController};

/// Errors produced when constructing a [`LookupTable`].
#[derive(Debug, Clone, PartialEq)]
pub enum LutError {
    /// The table has no entries.
    Empty,
    /// Breakpoints are not strictly increasing.
    Unsorted,
    /// The last breakpoint does not reach 100 % utilization.
    IncompleteCoverage {
        /// The highest breakpoint present.
        highest_percent: f64,
    },
}

impl fmt::Display for LutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "lookup table must have at least one entry"),
            Self::Unsorted => write!(f, "breakpoints must be strictly increasing"),
            Self::IncompleteCoverage { highest_percent } => write!(
                f,
                "table must cover up to 100% utilization, highest breakpoint is {highest_percent}%"
            ),
        }
    }
}

impl std::error::Error for LutError {}

/// A utilization-addressed fan-speed table.
///
/// Each entry `(breakpoint, rpm)` covers utilizations up to and
/// including the breakpoint; lookup takes the first entry whose
/// breakpoint is ≥ the observed utilization. The last breakpoint must
/// therefore be 100 %.
///
/// # Example
///
/// ```
/// use leakctl_control::LookupTable;
/// use leakctl_units::{Rpm, Utilization};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lut = LookupTable::new(vec![
///     (Utilization::from_percent(50.0)?, Rpm::new(1800.0)),
///     (Utilization::from_percent(100.0)?, Rpm::new(2400.0)),
/// ])?;
/// assert_eq!(lut.lookup(Utilization::from_percent(30.0)?), Rpm::new(1800.0));
/// assert_eq!(lut.lookup(Utilization::from_percent(80.0)?), Rpm::new(2400.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LookupTable {
    entries: Vec<(Utilization, Rpm)>,
}

impl LookupTable {
    /// Creates a table from `(breakpoint, rpm)` entries.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Empty`], [`LutError::Unsorted`], or
    /// [`LutError::IncompleteCoverage`].
    pub fn new(entries: Vec<(Utilization, Rpm)>) -> Result<Self, LutError> {
        if entries.is_empty() {
            return Err(LutError::Empty);
        }
        for pair in entries.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(LutError::Unsorted);
            }
        }
        let highest = entries.last().expect("non-empty").0;
        if !highest.is_full() {
            return Err(LutError::IncompleteCoverage {
                highest_percent: highest.as_percent(),
            });
        }
        Ok(Self { entries })
    }

    /// The optimal fan speed for the observed utilization.
    #[must_use]
    pub fn lookup(&self, u: Utilization) -> Rpm {
        for &(breakpoint, rpm) in &self.entries {
            if u <= breakpoint {
                return rpm;
            }
        }
        // Unreachable in practice: coverage is validated to 100 %.
        self.entries.last().expect("non-empty").1
    }

    /// The `(breakpoint, rpm)` entries.
    #[must_use]
    pub fn entries(&self) -> &[(Utilization, Rpm)] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false` — construction rejects empty tables. Provided for
    /// API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The paper's LUT-based cooling controller.
///
/// Runs on the DLC-PC: polls utilization every second (`sar`/`mpstat`),
/// looks up the energy-optimal fan speed, and commands it — *proactive*
/// control that acts on load changes before temperature reacts.
/// Stability comes from the 1-minute rate limit on changes: the
/// controller "react\[s\] fast … as soon as a spike is detected; however,
/// we do not allow RPM changes for 1 minute after each RPM update".
///
/// # Example
///
/// ```
/// use leakctl_control::{ControlInputs, FanController, LookupTable, LutController};
/// use leakctl_units::{Rpm, SimInstant, Utilization};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lut = LookupTable::new(vec![
///     (Utilization::from_percent(50.0)?, Rpm::new(1800.0)),
///     (Utilization::from_percent(100.0)?, Rpm::new(2400.0)),
/// ])?;
/// let mut ctl = LutController::paper_default(lut);
/// let busy = ControlInputs {
///     now: SimInstant::ZERO,
///     utilization: Utilization::FULL,
///     max_cpu_temp: None,
/// };
/// assert_eq!(ctl.decide(&busy), Some(Rpm::new(2400.0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LutController {
    table: LookupTable,
    limiter: RateLimiter,
    current: Option<Rpm>,
}

impl LutController {
    /// Creates a controller with an explicit rate-limit interval.
    #[must_use]
    pub fn new(table: LookupTable, min_change_interval: SimDuration) -> Self {
        Self {
            table,
            limiter: RateLimiter::new(min_change_interval),
            current: None,
        }
    }

    /// The paper's configuration: 1-minute minimum between changes.
    #[must_use]
    pub fn paper_default(table: LookupTable) -> Self {
        Self::new(table, SimDuration::from_mins(1))
    }

    /// The underlying table.
    #[must_use]
    pub fn table(&self) -> &LookupTable {
        &self.table
    }
}

impl FanController for LutController {
    fn name(&self) -> &str {
        "LUT"
    }

    /// "Utilization is polled every second to be able to respond to
    /// sudden utilization spikes."
    fn poll_period(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn decide(&mut self, inputs: &ControlInputs) -> Option<Rpm> {
        let want = self.table.lookup(inputs.utilization);
        if Some(want) == self.current {
            return None;
        }
        if !self.limiter.allows(inputs.now) {
            return None;
        }
        self.limiter.record(inputs.now);
        self.current = Some(want);
        Some(want)
    }

    fn reset(&mut self) {
        self.limiter.reset();
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakctl_units::SimInstant;

    fn table() -> LookupTable {
        LookupTable::new(vec![
            (Utilization::from_percent(25.0).unwrap(), Rpm::new(1800.0)),
            (
                Utilization::from_percent(50.0).unwrap(),
                Rpm::new(1800.0) + Rpm::new(0.0),
            ),
            (Utilization::from_percent(75.0).unwrap(), Rpm::new(2400.0)),
            (Utilization::from_percent(100.0).unwrap(), Rpm::new(2400.0)),
        ])
        .unwrap()
    }

    fn inputs(at_secs: u64, pct: f64) -> ControlInputs {
        ControlInputs {
            now: SimInstant::from_millis(at_secs * 1_000),
            utilization: Utilization::from_percent(pct).unwrap(),
            max_cpu_temp: None,
        }
    }

    #[test]
    fn lookup_uses_ceiling_breakpoint() {
        let t = table();
        assert_eq!(t.lookup(Utilization::IDLE), Rpm::new(1800.0));
        assert_eq!(
            t.lookup(Utilization::from_percent(25.0).unwrap()),
            Rpm::new(1800.0)
        );
        assert_eq!(
            t.lookup(Utilization::from_percent(60.0).unwrap()),
            Rpm::new(2400.0)
        );
        assert_eq!(t.lookup(Utilization::FULL), Rpm::new(2400.0));
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn table_validation() {
        assert_eq!(LookupTable::new(vec![]).unwrap_err(), LutError::Empty);
        let unsorted = LookupTable::new(vec![
            (Utilization::from_percent(50.0).unwrap(), Rpm::new(1800.0)),
            (Utilization::from_percent(50.0).unwrap(), Rpm::new(2400.0)),
        ]);
        assert_eq!(unsorted.unwrap_err(), LutError::Unsorted);
        let incomplete = LookupTable::new(vec![(
            Utilization::from_percent(80.0).unwrap(),
            Rpm::new(1800.0),
        )]);
        assert!(matches!(
            incomplete.unwrap_err(),
            LutError::IncompleteCoverage { .. }
        ));
    }

    #[test]
    fn reacts_immediately_to_first_spike() {
        let mut ctl = LutController::paper_default(table());
        assert_eq!(ctl.decide(&inputs(0, 100.0)), Some(Rpm::new(2400.0)));
        assert_eq!(ctl.name(), "LUT");
        assert_eq!(ctl.poll_period(), SimDuration::from_secs(1));
    }

    #[test]
    fn rate_limit_blocks_changes_for_one_minute() {
        let mut ctl = LutController::paper_default(table());
        assert!(ctl.decide(&inputs(0, 100.0)).is_some());
        // Load drops 10 s later — blocked.
        assert_eq!(ctl.decide(&inputs(10, 10.0)), None);
        assert_eq!(ctl.decide(&inputs(59, 10.0)), None);
        // After a minute the change is released.
        assert_eq!(ctl.decide(&inputs(60, 10.0)), Some(Rpm::new(1800.0)));
    }

    #[test]
    fn no_change_requested_when_lut_output_stable() {
        let mut ctl = LutController::paper_default(table());
        assert!(ctl.decide(&inputs(0, 80.0)).is_some());
        // Different utilizations mapping to the same RPM: no command,
        // and the rate limiter is not consumed.
        assert_eq!(ctl.decide(&inputs(70, 90.0)), None);
        assert_eq!(ctl.decide(&inputs(71, 100.0)), None);
        // A real change right after is allowed (limiter untouched).
        assert_eq!(ctl.decide(&inputs(72, 10.0)), Some(Rpm::new(1800.0)));
    }

    #[test]
    fn reset_clears_state() {
        let mut ctl = LutController::paper_default(table());
        assert!(ctl.decide(&inputs(0, 100.0)).is_some());
        ctl.reset();
        // Fresh run: first decision goes through immediately again.
        assert_eq!(ctl.decide(&inputs(1, 100.0)), Some(Rpm::new(2400.0)));
        assert_eq!(ctl.table().len(), 4);
    }

    #[test]
    fn error_display() {
        assert!(LutError::Empty.to_string().contains("at least one"));
        assert!(LutError::Unsorted.to_string().contains("increasing"));
        assert!(LutError::IncompleteCoverage {
            highest_percent: 80.0
        }
        .to_string()
        .contains("80"));
    }
}
