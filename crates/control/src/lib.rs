//! Fan-speed controllers for the `leakctl` reproduction.
//!
//! Implements the three control schemes compared in the paper's Table I
//! plus two extensions:
//!
//! - [`FixedSpeedController`] — the vendor default: fans pinned near
//!   3300 RPM regardless of load (over-cooling baseline),
//! - [`BangBangController`] — the 5-action temperature-band controller
//!   (reactive; tracks CSTH temperature only),
//! - [`LutController`] — the paper's contribution: a lookup table from
//!   utilization to the energy-optimal fan speed, polled every second,
//!   with a 1-minute rate limit on speed changes (proactive; never needs
//!   a temperature reading),
//! - [`PidController`] — a classic temperature-setpoint PID, included
//!   as an ablation point,
//! - [`build_lut`] — generates the LUT from a fitted
//!   [`ServerPowerModel`](leakctl_power::ServerPowerModel) and a
//!   steady-temperature predictor (measured grid or model preview),
//!   minimizing `P_leak + P_fan` subject to the 75 °C operational cap.
//!
//! # Example
//!
//! ```
//! use leakctl_control::{ControlInputs, FanController, FixedSpeedController};
//! use leakctl_units::{Rpm, SimInstant, Utilization};
//!
//! let mut ctl = FixedSpeedController::paper_default();
//! let inputs = ControlInputs {
//!     now: SimInstant::ZERO,
//!     utilization: Utilization::FULL,
//!     max_cpu_temp: None,
//! };
//! assert_eq!(ctl.decide(&inputs), Some(Rpm::new(3300.0)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bangbang;
mod builder;
mod fixed;
mod lut;
mod pid;
mod ratelimit;
mod traits;

pub use bangbang::BangBangController;
pub use builder::{build_lut, build_lut_with_predictors, LutBuildError, SteadyTempGrid};
pub use fixed::FixedSpeedController;
pub use lut::{LookupTable, LutController, LutError};
pub use pid::PidController;
pub use ratelimit::RateLimiter;
pub use traits::{ControlInputs, FanController};
