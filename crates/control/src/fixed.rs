//! The vendor-default fixed-speed policy.

use leakctl_units::{Rpm, SimDuration};

use crate::traits::{ControlInputs, FanController};

/// The server's default cooling behaviour: fans pinned near a fixed
/// speed.
///
/// The paper observes that "the baseline setting keeps the fans rotating
/// close to a fixed speed of 3300 RPM, which leads to very low
/// temperatures and to over-cooling of the system" — vendors configure
/// a high floor to stay safe across ambient and altitude ranges.
///
/// # Example
///
/// ```
/// use leakctl_control::{ControlInputs, FanController, FixedSpeedController};
/// use leakctl_units::{Rpm, SimInstant, Utilization};
///
/// let mut ctl = FixedSpeedController::new(Rpm::new(3300.0));
/// let inputs = ControlInputs {
///     now: SimInstant::ZERO,
///     utilization: Utilization::IDLE,
///     max_cpu_temp: None,
/// };
/// assert_eq!(ctl.decide(&inputs), Some(Rpm::new(3300.0)));
/// // Subsequent polls request nothing — the speed never changes.
/// assert_eq!(ctl.decide(&inputs), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedSpeedController {
    rpm: Rpm,
    issued: bool,
}

impl FixedSpeedController {
    /// Creates a controller pinned at `rpm`.
    #[must_use]
    pub fn new(rpm: Rpm) -> Self {
        Self { rpm, issued: false }
    }

    /// The paper baseline: 3300 RPM.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(Rpm::new(3300.0))
    }

    /// The pinned speed.
    #[must_use]
    pub fn rpm(&self) -> Rpm {
        self.rpm
    }
}

impl FanController for FixedSpeedController {
    fn name(&self) -> &str {
        "Default"
    }

    fn poll_period(&self) -> SimDuration {
        SimDuration::from_secs(10)
    }

    fn decide(&mut self, _inputs: &ControlInputs) -> Option<Rpm> {
        if self.issued {
            None
        } else {
            self.issued = true;
            Some(self.rpm)
        }
    }

    fn reset(&mut self) {
        self.issued = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakctl_units::{SimInstant, Utilization};

    fn inputs() -> ControlInputs {
        ControlInputs {
            now: SimInstant::ZERO,
            utilization: Utilization::FULL,
            max_cpu_temp: None,
        }
    }

    #[test]
    fn issues_once_then_holds() {
        let mut ctl = FixedSpeedController::paper_default();
        assert_eq!(ctl.decide(&inputs()), Some(Rpm::new(3300.0)));
        for _ in 0..10 {
            assert_eq!(ctl.decide(&inputs()), None);
        }
        assert_eq!(ctl.name(), "Default");
        assert_eq!(ctl.rpm(), Rpm::new(3300.0));
    }

    #[test]
    fn reset_reissues() {
        let mut ctl = FixedSpeedController::new(Rpm::new(2400.0));
        assert!(ctl.decide(&inputs()).is_some());
        ctl.reset();
        assert_eq!(ctl.decide(&inputs()), Some(Rpm::new(2400.0)));
    }
}
