//! The controller interface.

use leakctl_units::{Celsius, Rpm, SimDuration, SimInstant, Utilization};

/// Everything a controller may observe at a decision instant — the
/// information the paper's DLC-PC has: `sar`-style utilization (polled
/// every second) and the latest CSTH temperature sample (10-second
/// cadence). Ground-truth simulator state is deliberately absent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlInputs {
    /// Current instant.
    pub now: SimInstant,
    /// Utilization reported by the OS counters over the last poll
    /// window.
    pub utilization: Utilization,
    /// Hottest CPU temperature in the most recent CSTH sample, if any
    /// sample exists yet.
    pub max_cpu_temp: Option<Celsius>,
}

/// A fan-speed control policy.
///
/// Implementations are polled by the experiment runner every
/// [`FanController::poll_period`]; returning `Some(rpm)` requests a new
/// fan speed (the platform clamps it to the supported range), `None`
/// leaves the fans alone.
pub trait FanController {
    /// Short name used in tables and traces (e.g. `"LUT"`).
    fn name(&self) -> &str;

    /// How often the controller wants to be consulted.
    fn poll_period(&self) -> SimDuration;

    /// Makes a control decision.
    fn decide(&mut self, inputs: &ControlInputs) -> Option<Rpm>;

    /// Resets internal state (rate limiters, integrators) for a fresh
    /// run.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait stays object-safe — runners hold `Box<dyn FanController>`.
    #[test]
    fn object_safety() {
        struct Noop;
        impl FanController for Noop {
            fn name(&self) -> &str {
                "noop"
            }
            fn poll_period(&self) -> SimDuration {
                SimDuration::from_secs(1)
            }
            fn decide(&mut self, _inputs: &ControlInputs) -> Option<Rpm> {
                None
            }
            fn reset(&mut self) {}
        }
        let mut boxed: Box<dyn FanController> = Box::new(Noop);
        let inputs = ControlInputs {
            now: SimInstant::ZERO,
            utilization: Utilization::IDLE,
            max_cpu_temp: None,
        };
        assert_eq!(boxed.decide(&inputs), None);
        assert_eq!(boxed.name(), "noop");
        boxed.reset();
    }
}
