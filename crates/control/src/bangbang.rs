//! The 5-action bang-bang temperature controller.

use leakctl_units::{Celsius, Rpm, SimDuration};

use crate::traits::{ControlInputs, FanController};

/// The paper's bang-bang baseline: tracks only the CSTH temperature and
/// steers it into the 65–75 °C band with five actions:
///
/// 1. `Tmax < 60 °C` → set the minimum speed (1800 RPM),
/// 2. `60 ≤ Tmax < 65 °C` → lower speed by 600 RPM,
/// 3. `65 ≤ Tmax ≤ 75 °C` → no action,
/// 4. `Tmax > 75 °C` → raise speed by 600 RPM,
/// 5. `Tmax > 80 °C` → set the maximum speed (4200 RPM).
///
/// It reacts *after* a thermal event occurs, which is why the paper
/// finds it weak on spiky workloads (Test-2): temperature has already
/// climbed — and leakage with it — before the controller responds.
///
/// # Example
///
/// ```
/// use leakctl_control::{BangBangController, ControlInputs, FanController};
/// use leakctl_units::{Celsius, Rpm, SimInstant, Utilization};
///
/// let mut ctl = BangBangController::paper_default();
/// let hot = ControlInputs {
///     now: SimInstant::ZERO,
///     utilization: Utilization::FULL,
///     max_cpu_temp: Some(Celsius::new(82.0)),
/// };
/// assert_eq!(ctl.decide(&hot), Some(Rpm::new(4200.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BangBangController {
    min_rpm: Rpm,
    max_rpm: Rpm,
    step: Rpm,
    low_release: Celsius, // below: jump to min (action 1)
    low_band: Celsius,    // below: step down   (action 2)
    high_band: Celsius,   // above: step up     (action 4)
    panic_temp: Celsius,  // above: jump to max (action 5)
    current: Rpm,
}

impl BangBangController {
    /// Creates a controller with explicit thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless
    /// `low_release < low_band < high_band < panic_temp` and
    /// `min_rpm < max_rpm` and the step is positive.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        min_rpm: Rpm,
        max_rpm: Rpm,
        step: Rpm,
        low_release: Celsius,
        low_band: Celsius,
        high_band: Celsius,
        panic_temp: Celsius,
        initial: Rpm,
    ) -> Self {
        assert!(min_rpm < max_rpm, "min_rpm must be below max_rpm");
        assert!(step.value() > 0.0, "step must be positive");
        assert!(
            low_release < low_band && low_band < high_band && high_band < panic_temp,
            "thresholds must be strictly increasing"
        );
        Self {
            min_rpm,
            max_rpm,
            step,
            low_release,
            low_band,
            high_band,
            panic_temp,
            current: initial,
        }
    }

    /// The paper's configuration: 1800–4200 RPM in 600 RPM steps,
    /// thresholds 60/65/75/80 °C, starting from the 3300 RPM default.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(
            Rpm::new(1800.0),
            Rpm::new(4200.0),
            Rpm::new(600.0),
            Celsius::new(60.0),
            Celsius::new(65.0),
            Celsius::new(75.0),
            Celsius::new(80.0),
            Rpm::new(3300.0),
        )
    }

    /// Builds a variant with a different comfort band (for the band
    /// ablation bench); other thresholds shift with it.
    #[must_use]
    pub fn with_band(low_band: Celsius, high_band: Celsius) -> Self {
        Self::new(
            Rpm::new(1800.0),
            Rpm::new(4200.0),
            Rpm::new(600.0),
            low_band - leakctl_units::TempDelta::new(5.0),
            low_band,
            high_band,
            high_band + leakctl_units::TempDelta::new(5.0),
            Rpm::new(3300.0),
        )
    }

    /// The speed the controller believes the fans are at.
    #[must_use]
    pub fn current(&self) -> Rpm {
        self.current
    }
}

impl FanController for BangBangController {
    fn name(&self) -> &str {
        "Bang"
    }

    /// Temperature arrives at CSTH cadence, so deciding faster is
    /// pointless.
    fn poll_period(&self) -> SimDuration {
        SimDuration::from_secs(10)
    }

    fn decide(&mut self, inputs: &ControlInputs) -> Option<Rpm> {
        let t = inputs.max_cpu_temp?;
        let next = if t > self.panic_temp {
            self.max_rpm
        } else if t > self.high_band {
            (self.current + self.step).min(self.max_rpm)
        } else if t < self.low_release {
            self.min_rpm
        } else if t < self.low_band {
            (self.current - self.step).max(self.min_rpm)
        } else {
            self.current
        };
        if next == self.current {
            None
        } else {
            self.current = next;
            Some(next)
        }
    }

    fn reset(&mut self) {
        self.current = Rpm::new(3300.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakctl_units::{SimInstant, Utilization};

    fn inputs(temp: Option<f64>) -> ControlInputs {
        ControlInputs {
            now: SimInstant::ZERO,
            utilization: Utilization::FULL,
            max_cpu_temp: temp.map(Celsius::new),
        }
    }

    #[test]
    fn five_actions() {
        // Action 5: panic to max.
        let mut ctl = BangBangController::paper_default();
        assert_eq!(ctl.decide(&inputs(Some(81.0))), Some(Rpm::new(4200.0)));

        // Action 4: step up.
        let mut ctl = BangBangController::paper_default();
        assert_eq!(ctl.decide(&inputs(Some(76.0))), Some(Rpm::new(3900.0)));

        // Action 3: dead band.
        let mut ctl = BangBangController::paper_default();
        assert_eq!(ctl.decide(&inputs(Some(70.0))), None);

        // Action 2: step down.
        let mut ctl = BangBangController::paper_default();
        assert_eq!(ctl.decide(&inputs(Some(62.0))), Some(Rpm::new(2700.0)));

        // Action 1: jump to min.
        let mut ctl = BangBangController::paper_default();
        assert_eq!(ctl.decide(&inputs(Some(55.0))), Some(Rpm::new(1800.0)));
    }

    #[test]
    fn saturates_at_limits() {
        let mut ctl = BangBangController::paper_default();
        // Repeated hot readings walk up to max and stay there.
        for _ in 0..5 {
            ctl.decide(&inputs(Some(78.0)));
        }
        assert_eq!(ctl.current(), Rpm::new(4200.0));
        assert_eq!(ctl.decide(&inputs(Some(78.0))), None);

        // Repeated cool-band readings walk down to min.
        for _ in 0..10 {
            ctl.decide(&inputs(Some(61.0)));
        }
        assert_eq!(ctl.current(), Rpm::new(1800.0));
        assert_eq!(ctl.decide(&inputs(Some(61.0))), None);
    }

    #[test]
    fn no_temperature_means_no_action() {
        let mut ctl = BangBangController::paper_default();
        assert_eq!(ctl.decide(&inputs(None)), None);
    }

    #[test]
    fn boundary_temperatures_take_no_action() {
        // 65 and 75 are inside the closed comfort band.
        let mut ctl = BangBangController::paper_default();
        assert_eq!(ctl.decide(&inputs(Some(65.0))), None);
        assert_eq!(ctl.decide(&inputs(Some(75.0))), None);
    }

    #[test]
    fn reset_restores_default_speed() {
        let mut ctl = BangBangController::paper_default();
        ctl.decide(&inputs(Some(85.0)));
        assert_eq!(ctl.current(), Rpm::new(4200.0));
        ctl.reset();
        assert_eq!(ctl.current(), Rpm::new(3300.0));
        assert_eq!(ctl.name(), "Bang");
    }

    #[test]
    fn with_band_shifts_thresholds() {
        let mut ctl = BangBangController::with_band(Celsius::new(70.0), Celsius::new(75.0));
        // 68 °C sits below the 70 °C band start → step down.
        assert_eq!(ctl.decide(&inputs(Some(68.0))), Some(Rpm::new(2700.0)));
        // 72 °C is inside the band.
        assert_eq!(ctl.decide(&inputs(Some(72.0))), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_bad_thresholds() {
        let _ = BangBangController::new(
            Rpm::new(1800.0),
            Rpm::new(4200.0),
            Rpm::new(600.0),
            Celsius::new(70.0),
            Celsius::new(65.0),
            Celsius::new(75.0),
            Celsius::new(80.0),
            Rpm::new(3300.0),
        );
    }
}
