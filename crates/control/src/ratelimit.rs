//! Minimum-interval rate limiting for actuator commands.

use leakctl_units::{SimDuration, SimInstant};

/// Enforces a minimum interval between actuator changes.
///
/// The paper: "we do not allow RPM changes for 1 minute after each RPM
/// update … a tradeoff between the maximum number of fan changes …
/// and the maximum temperature overshoot we want to tolerate."
///
/// # Example
///
/// ```
/// use leakctl_control::RateLimiter;
/// use leakctl_units::{SimDuration, SimInstant};
///
/// let mut rl = RateLimiter::new(SimDuration::from_mins(1));
/// let t0 = SimInstant::ZERO;
/// assert!(rl.allows(t0));
/// rl.record(t0);
/// assert!(!rl.allows(t0 + SimDuration::from_secs(30)));
/// assert!(rl.allows(t0 + SimDuration::from_secs(60)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimiter {
    min_interval: SimDuration,
    last: Option<SimInstant>,
}

impl RateLimiter {
    /// Creates a limiter with the given minimum interval between
    /// recorded changes.
    #[must_use]
    pub fn new(min_interval: SimDuration) -> Self {
        Self {
            min_interval,
            last: None,
        }
    }

    /// `true` when a change at `now` is permitted.
    #[must_use]
    pub fn allows(&self, now: SimInstant) -> bool {
        match self.last {
            None => true,
            Some(last) => now.since(last) >= self.min_interval,
        }
    }

    /// Records that a change happened at `now`.
    pub fn record(&mut self, now: SimInstant) {
        self.last = Some(now);
    }

    /// Forgets history (fresh run).
    pub fn reset(&mut self) {
        self.last = None;
    }

    /// The configured minimum interval.
    #[must_use]
    pub fn min_interval(&self) -> SimDuration {
        self.min_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimInstant {
        SimInstant::from_millis(s * 1_000)
    }

    #[test]
    fn first_change_always_allowed() {
        let rl = RateLimiter::new(SimDuration::from_mins(1));
        assert!(rl.allows(at(0)));
        assert_eq!(rl.min_interval(), SimDuration::from_mins(1));
    }

    #[test]
    fn blocks_within_interval_exactly() {
        let mut rl = RateLimiter::new(SimDuration::from_secs(60));
        rl.record(at(100));
        assert!(!rl.allows(at(100)));
        assert!(!rl.allows(at(159)));
        assert!(rl.allows(at(160)), "boundary is inclusive");
        // Times before the recorded change are also blocked (saturating).
        assert!(!rl.allows(at(50)));
    }

    #[test]
    fn reset_clears_history() {
        let mut rl = RateLimiter::new(SimDuration::from_secs(60));
        rl.record(at(0));
        assert!(!rl.allows(at(1)));
        rl.reset();
        assert!(rl.allows(at(1)));
    }

    #[test]
    fn zero_interval_never_blocks() {
        let mut rl = RateLimiter::new(SimDuration::ZERO);
        rl.record(at(5));
        assert!(rl.allows(at(5)));
    }
}
