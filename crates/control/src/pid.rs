//! Temperature-setpoint PID controller (ablation extension).

use leakctl_units::{Celsius, Rpm, SimDuration};

use crate::ratelimit::RateLimiter;
use crate::traits::{ControlInputs, FanController};

/// A classic PID controller regulating the hottest CPU temperature to a
/// setpoint by modulating fan speed.
///
/// Not part of the paper's evaluation — included as an ablation point
/// between the reactive bang-bang and the proactive LUT: like bang-bang
/// it only sees temperature; unlike it, the response is proportional.
/// Output is quantized to 100 RPM and changes are rate-limited to one
/// per minute (as for the LUT controller), so sensor noise walking the
/// integrator across quantization boundaries does not produce a stream
/// of micro-adjustments.
///
/// # Example
///
/// ```
/// use leakctl_control::{ControlInputs, FanController, PidController};
/// use leakctl_units::{Celsius, SimInstant, Utilization};
///
/// let mut ctl = PidController::paper_tuned();
/// let hot = ControlInputs {
///     now: SimInstant::ZERO,
///     utilization: Utilization::FULL,
///     max_cpu_temp: Some(Celsius::new(85.0)),
/// };
/// let cmd = ctl.decide(&hot).expect("hot die demands a speed change");
/// assert!(cmd.value() > 3000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidController {
    setpoint: Celsius,
    kp: f64, // RPM per °C
    ki: f64, // RPM per (°C·s)
    kd: f64, // RPM per (°C/s)
    min_rpm: Rpm,
    max_rpm: Rpm,
    base_rpm: Rpm,
    quantum: f64,
    integral: f64,
    prev_error: Option<f64>,
    current: Option<Rpm>,
    limiter: RateLimiter,
}

impl PidController {
    /// Creates a PID controller.
    ///
    /// # Panics
    ///
    /// Panics for non-positive gains quantum or an inverted RPM range.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        setpoint: Celsius,
        kp: f64,
        ki: f64,
        kd: f64,
        min_rpm: Rpm,
        max_rpm: Rpm,
        base_rpm: Rpm,
        quantum: f64,
    ) -> Self {
        assert!(kp >= 0.0 && ki >= 0.0 && kd >= 0.0, "gains must be >= 0");
        assert!(min_rpm < max_rpm, "min_rpm must be below max_rpm");
        assert!(quantum > 0.0, "quantum must be positive");
        Self {
            setpoint,
            kp,
            ki,
            kd,
            min_rpm,
            max_rpm,
            base_rpm,
            quantum,
            integral: 0.0,
            prev_error: None,
            current: None,
            limiter: RateLimiter::new(SimDuration::from_mins(1)),
        }
    }

    /// Gains tuned for the calibrated twin: setpoint 70 °C, mostly
    /// proportional with gentle integral action.
    #[must_use]
    pub fn paper_tuned() -> Self {
        Self::new(
            Celsius::new(70.0),
            120.0,
            0.6,
            0.0,
            Rpm::new(1800.0),
            Rpm::new(4200.0),
            Rpm::new(2400.0),
            100.0,
        )
    }

    /// The temperature setpoint.
    #[must_use]
    pub fn setpoint(&self) -> Celsius {
        self.setpoint
    }
}

impl FanController for PidController {
    fn name(&self) -> &str {
        "PID"
    }

    fn poll_period(&self) -> SimDuration {
        SimDuration::from_secs(10)
    }

    fn decide(&mut self, inputs: &ControlInputs) -> Option<Rpm> {
        let t = inputs.max_cpu_temp?;
        let dt = self.poll_period().as_secs_f64();
        let error = t.degrees() - self.setpoint.degrees();
        self.integral = (self.integral + error * dt).clamp(-2_000.0, 2_000.0);
        let derivative = self.prev_error.map_or(0.0, |prev| (error - prev) / dt);
        self.prev_error = Some(error);

        let raw = self.base_rpm.value()
            + self.kp * error
            + self.ki * self.integral
            + self.kd * derivative;
        let clamped = raw.clamp(self.min_rpm.value(), self.max_rpm.value());
        let quantized = Rpm::new((clamped / self.quantum).round() * self.quantum);
        if Some(quantized) == self.current {
            return None;
        }
        if !self.limiter.allows(inputs.now) {
            return None;
        }
        self.limiter.record(inputs.now);
        self.current = Some(quantized);
        Some(quantized)
    }

    fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
        self.current = None;
        self.limiter.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakctl_units::{SimInstant, Utilization};

    fn inputs(temp: f64) -> ControlInputs {
        inputs_at(0, temp)
    }

    fn inputs_at(secs: u64, temp: f64) -> ControlInputs {
        ControlInputs {
            now: SimInstant::from_millis(secs * 1_000),
            utilization: Utilization::FULL,
            max_cpu_temp: Some(Celsius::new(temp)),
        }
    }

    #[test]
    fn hotter_means_faster() {
        let mut a = PidController::paper_tuned();
        let mut b = PidController::paper_tuned();
        let cool = a.decide(&inputs(60.0)).unwrap();
        let hot = b.decide(&inputs(85.0)).unwrap();
        assert!(hot > cool, "hot {hot} vs cool {cool}");
    }

    #[test]
    fn output_clamped_and_quantized() {
        let mut ctl = PidController::paper_tuned();
        let cmd = ctl.decide(&inputs(120.0)).unwrap();
        assert_eq!(cmd, Rpm::new(4200.0));
        let mut ctl = PidController::paper_tuned();
        let cmd = ctl.decide(&inputs(10.0)).unwrap();
        assert_eq!(cmd, Rpm::new(1800.0));
        let mut ctl = PidController::paper_tuned();
        let cmd = ctl.decide(&inputs(71.3)).unwrap();
        assert!((cmd.value() % 100.0).abs() < 1e-9, "quantized to 100 RPM");
    }

    #[test]
    fn stable_reading_emits_once() {
        let mut ctl = PidController::paper_tuned();
        let first = ctl.decide(&inputs(70.0));
        assert!(first.is_some());
        // Same temperature at setpoint: integral barely moves, quantized
        // output stays put.
        assert_eq!(ctl.decide(&inputs(70.0)), None);
    }

    #[test]
    fn integral_windup_bounded() {
        let mut ctl = PidController::paper_tuned();
        let mut t = 0u64;
        for _ in 0..10_000 {
            let _ = ctl.decide(&inputs_at(t, 90.0));
            t += 10;
        }
        // After a long saturation stretch, a cold reading must still
        // bring the command down within a bounded number of polls.
        let mut cmd = Rpm::new(4200.0);
        for _ in 0..200 {
            if let Some(c) = ctl.decide(&inputs_at(t, 40.0)) {
                cmd = c;
            }
            t += 10;
        }
        assert!(cmd < Rpm::new(2500.0), "recovered to {cmd}");
    }

    #[test]
    fn rate_limit_spaces_commands() {
        let mut ctl = PidController::paper_tuned();
        let mut changes: Vec<u64> = Vec::new();
        // Noisy readings around the setpoint every 10 s for 30 minutes.
        for k in 0..180u64 {
            let noise = if k % 2 == 0 { 1.5 } else { -1.5 };
            if ctl.decide(&inputs_at(k * 10, 70.0 + noise)).is_some() {
                changes.push(k * 10);
            }
        }
        for pair in changes.windows(2) {
            assert!(
                pair[1] - pair[0] >= 60,
                "commands at {}s and {}s violate the 1-minute limit",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn missing_temperature_no_action() {
        let mut ctl = PidController::paper_tuned();
        let no_temp = ControlInputs {
            now: SimInstant::ZERO,
            utilization: Utilization::FULL,
            max_cpu_temp: None,
        };
        assert_eq!(ctl.decide(&no_temp), None);
    }

    #[test]
    fn reset_clears_integrator() {
        let mut ctl = PidController::paper_tuned();
        for _ in 0..100 {
            let _ = ctl.decide(&inputs(90.0));
        }
        ctl.reset();
        let mut fresh = PidController::paper_tuned();
        assert_eq!(ctl.decide(&inputs(70.0)), fresh.decide(&inputs(70.0)));
        assert_eq!(ctl.setpoint(), Celsius::new(70.0));
        assert_eq!(ctl.name(), "PID");
    }
}
