//! LUT generation: "based on the model fitting results we generate a
//! lookup table that holds the optimum fan speed values for each
//! utilization level".

use core::fmt;

use leakctl_power::ServerPowerModel;
use leakctl_units::{Celsius, Rpm, Utilization};

use crate::lut::{LookupTable, LutError};

/// Errors produced by [`build_lut`] and [`SteadyTempGrid`].
#[derive(Debug, Clone, PartialEq)]
pub enum LutBuildError {
    /// No candidate fan speeds were supplied.
    NoCandidates,
    /// No utilization bins were supplied.
    NoBins,
    /// Grid construction data was inconsistent.
    BadGrid {
        /// Description of the inconsistency.
        what: String,
    },
    /// The resulting table failed validation.
    Table(LutError),
}

impl fmt::Display for LutBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoCandidates => write!(f, "need at least one candidate fan speed"),
            Self::NoBins => write!(f, "need at least one utilization bin"),
            Self::BadGrid { what } => write!(f, "inconsistent steady-temperature grid: {what}"),
            Self::Table(e) => write!(f, "generated table invalid: {e}"),
        }
    }
}

impl std::error::Error for LutBuildError {}

impl From<LutError> for LutBuildError {
    fn from(e: LutError) -> Self {
        Self::Table(e)
    }
}

/// Builds the optimal-fan-speed table.
///
/// For each utilization bin, every candidate speed is scored with the
/// *fitted* power model: `P_leak(T_ss) + P_fan(rpm)`, where `T_ss` is
/// the predicted steady hottest-die temperature at that operating point
/// (from characterization measurements — see [`SteadyTempGrid`] — or a
/// model preview). Candidates whose temperature exceeds `t_cap` (the
/// paper's 75 °C operational limit) are excluded; if every candidate
/// violates the cap, the fastest speed is chosen as the safest option.
///
/// # Errors
///
/// Returns [`LutBuildError::NoCandidates`] / [`LutBuildError::NoBins`]
/// for empty inputs and [`LutBuildError::Table`] when the bins do not
/// form a valid table (e.g. missing 100 % coverage).
///
/// # Example
///
/// ```
/// use leakctl_control::build_lut;
/// use leakctl_power::ServerPowerModel;
/// use leakctl_units::{Celsius, Rpm, Utilization};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = ServerPowerModel::paper_fit();
/// let rpms = [1800.0, 2400.0, 3000.0, 3600.0, 4200.0].map(Rpm::new);
/// let bins: Vec<Utilization> = [25.0, 50.0, 75.0, 100.0]
///     .iter()
///     .map(|&p| Utilization::from_percent(p))
///     .collect::<Result<_, _>>()?;
/// // Toy predictor: hotter with load, cooler with speed.
/// let lut = build_lut(
///     &model,
///     |u, rpm| Celsius::new(30.0 + 0.45 * u.as_percent() + (4200.0 - rpm.value()) / 75.0),
///     &rpms,
///     &bins,
///     Celsius::new(75.0),
/// )?;
/// assert_eq!(lut.len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn build_lut(
    model: &ServerPowerModel,
    predict_steady_temp: impl Fn(Utilization, Rpm) -> Celsius,
    candidate_rpms: &[Rpm],
    bins: &[Utilization],
    t_cap: Celsius,
) -> Result<LookupTable, LutBuildError> {
    build_lut_with_predictors(
        model,
        &predict_steady_temp,
        &predict_steady_temp,
        candidate_rpms,
        bins,
        t_cap,
    )
}

/// [`build_lut`] with *separate* predictors for the cost and the cap.
///
/// Energy scales with the time-average die temperature, so the leakage
/// cost should use the predicted *average* steady temperature; the
/// reliability cap, however, binds on the *hottest* sensor. When both
/// grids are available from characterization, passing them separately
/// reproduces the paper's optima more faithfully than using either grid
/// for both roles.
///
/// # Errors
///
/// Same as [`build_lut`].
pub fn build_lut_with_predictors(
    model: &ServerPowerModel,
    cost_temp: &impl Fn(Utilization, Rpm) -> Celsius,
    cap_temp: &impl Fn(Utilization, Rpm) -> Celsius,
    candidate_rpms: &[Rpm],
    bins: &[Utilization],
    t_cap: Celsius,
) -> Result<LookupTable, LutBuildError> {
    if candidate_rpms.is_empty() {
        return Err(LutBuildError::NoCandidates);
    }
    if bins.is_empty() {
        return Err(LutBuildError::NoBins);
    }
    let max_rpm = candidate_rpms.iter().copied().fold(Rpm::ZERO, Rpm::max);

    let mut entries = Vec::with_capacity(bins.len());
    for &u in bins {
        let mut best: Option<(Rpm, f64)> = None;
        for &rpm in candidate_rpms {
            if cap_temp(u, rpm) > t_cap {
                continue;
            }
            let cost = model.controllable(cost_temp(u, rpm), rpm).value();
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((rpm, cost));
            }
        }
        let chosen = best.map_or(max_rpm, |(rpm, _)| rpm);
        entries.push((u, chosen));
    }
    Ok(LookupTable::new(entries)?)
}

/// Steady-state hottest-die temperatures measured over a
/// `(utilization × fan speed)` characterization grid, with bilinear
/// interpolation between grid points — the data-driven predictor fed to
/// [`build_lut`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SteadyTempGrid {
    utils: Vec<f64>,      // percent, ascending
    rpms: Vec<f64>,       // ascending
    temps: Vec<Vec<f64>>, // [util][rpm], °C
}

impl SteadyTempGrid {
    /// Creates a grid from measurement axes and a `[util][rpm]`
    /// temperature matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LutBuildError::BadGrid`] for empty axes, non-ascending
    /// axes, or a matrix whose shape does not match the axes.
    pub fn new(
        utils: Vec<Utilization>,
        rpms: Vec<Rpm>,
        temps: Vec<Vec<Celsius>>,
    ) -> Result<Self, LutBuildError> {
        let bad = |what: &str| {
            Err(LutBuildError::BadGrid {
                what: what.to_owned(),
            })
        };
        if utils.is_empty() || rpms.is_empty() {
            return bad("axes must be non-empty");
        }
        if temps.len() != utils.len() || temps.iter().any(|row| row.len() != rpms.len()) {
            return bad("matrix shape must match axes");
        }
        let u: Vec<f64> = utils.iter().map(|x| x.as_percent()).collect();
        let r: Vec<f64> = rpms.iter().map(|x| x.value()).collect();
        if u.windows(2).any(|w| w[1] <= w[0]) || r.windows(2).any(|w| w[1] <= w[0]) {
            return bad("axes must be strictly ascending");
        }
        Ok(Self {
            utils: u,
            rpms: r,
            temps: temps
                .into_iter()
                .map(|row| row.into_iter().map(|t| t.degrees()).collect())
                .collect(),
        })
    }

    /// Interpolated steady temperature at `(u, rpm)`; queries outside
    /// the grid clamp to its edges.
    #[must_use]
    pub fn temp(&self, u: Utilization, rpm: Rpm) -> Celsius {
        let (ui, uf) = Self::locate(&self.utils, u.as_percent());
        let (ri, rf) = Self::locate(&self.rpms, rpm.value());
        let t00 = self.temps[ui][ri];
        let t01 = self.temps[ui][(ri + 1).min(self.rpms.len() - 1)];
        let t10 = self.temps[(ui + 1).min(self.utils.len() - 1)][ri];
        let t11 = self.temps[(ui + 1).min(self.utils.len() - 1)][(ri + 1).min(self.rpms.len() - 1)];
        let low = t00 * (1.0 - rf) + t01 * rf;
        let high = t10 * (1.0 - rf) + t11 * rf;
        Celsius::new(low * (1.0 - uf) + high * uf)
    }

    /// Locates `x` on `axis`: returns `(lower index, fraction)` with the
    /// fraction clamped to `[0, 1]`.
    fn locate(axis: &[f64], x: f64) -> (usize, f64) {
        if x <= axis[0] || axis.len() == 1 {
            return (0, 0.0);
        }
        if x >= *axis.last().expect("non-empty") {
            return (axis.len() - 1, 0.0);
        }
        let hi = axis.partition_point(|&a| a <= x);
        let lo = hi - 1;
        let frac = (x - axis[lo]) / (axis[hi] - axis[lo]);
        (lo, frac)
    }

    /// The utilization axis, percent.
    #[must_use]
    pub fn utilization_axis(&self) -> &[f64] {
        &self.utils
    }

    /// The fan-speed axis, RPM.
    #[must_use]
    pub fn rpm_axis(&self) -> &[f64] {
        &self.rpms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(p: f64) -> Utilization {
        Utilization::from_percent(p).unwrap()
    }

    fn grid() -> SteadyTempGrid {
        // Synthetic but shaped like the calibrated machine.
        let utils = vec![pct(25.0), pct(50.0), pct(75.0), pct(100.0)];
        let rpms = vec![
            Rpm::new(1800.0),
            Rpm::new(2400.0),
            Rpm::new(3000.0),
            Rpm::new(3600.0),
            Rpm::new(4200.0),
        ];
        let temps = vec![
            vec![55.0, 48.0, 44.0, 42.0, 40.0],
            vec![65.0, 56.0, 51.0, 48.0, 45.0],
            vec![76.0, 64.0, 58.0, 54.0, 51.0],
            vec![86.0, 71.0, 64.0, 59.0, 56.0],
        ]
        .into_iter()
        .map(|row| row.into_iter().map(Celsius::new).collect())
        .collect();
        SteadyTempGrid::new(utils, rpms, temps).unwrap()
    }

    #[test]
    fn grid_reproduces_its_points() {
        let g = grid();
        assert_eq!(g.temp(pct(100.0), Rpm::new(1800.0)), Celsius::new(86.0));
        assert_eq!(g.temp(pct(25.0), Rpm::new(4200.0)), Celsius::new(40.0));
        assert_eq!(g.utilization_axis().len(), 4);
        assert_eq!(g.rpm_axis().len(), 5);
    }

    #[test]
    fn grid_interpolates_between_points() {
        let g = grid();
        // Midway between (50 %, 2400) = 56 and (50 %, 3000) = 51 → 53.5.
        let t = g.temp(pct(50.0), Rpm::new(2700.0));
        assert!((t.degrees() - 53.5).abs() < 1e-9);
        // Midway in utilization too.
        let t = g.temp(pct(62.5), Rpm::new(2400.0));
        assert!((t.degrees() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn grid_clamps_outside_range() {
        let g = grid();
        assert_eq!(g.temp(pct(0.0), Rpm::new(1000.0)), Celsius::new(55.0));
        assert_eq!(g.temp(pct(100.0), Rpm::new(9000.0)), Celsius::new(56.0));
    }

    #[test]
    fn grid_validation() {
        assert!(SteadyTempGrid::new(vec![], vec![Rpm::new(1.0)], vec![]).is_err());
        assert!(SteadyTempGrid::new(
            vec![pct(10.0)],
            vec![Rpm::new(1.0)],
            vec![vec![Celsius::new(1.0), Celsius::new(2.0)]],
        )
        .is_err());
        assert!(SteadyTempGrid::new(
            vec![pct(50.0), pct(50.0)],
            vec![Rpm::new(1.0)],
            vec![vec![Celsius::new(1.0)], vec![Celsius::new(2.0)]],
        )
        .is_err());
    }

    #[test]
    fn built_lut_picks_interior_optimum() {
        // With the calibrated shapes, high load should pick a mid speed
        // (≈2400), not an extreme — the paper's headline observation.
        let model = ServerPowerModel::paper_fit();
        let g = grid();
        let rpms: Vec<Rpm> = g.rpm_axis().iter().map(|&r| Rpm::new(r)).collect();
        let bins = vec![pct(25.0), pct(50.0), pct(75.0), pct(100.0)];
        let lut = build_lut(
            &model,
            |u, rpm| g.temp(u, rpm),
            &rpms,
            &bins,
            Celsius::new(75.0),
        )
        .unwrap();
        let at_full = lut.lookup(Utilization::FULL);
        assert!(
            at_full > Rpm::new(1800.0) && at_full < Rpm::new(3600.0),
            "full-load optimum {at_full} should be interior"
        );
        // Low load can afford the slowest fans.
        assert_eq!(lut.lookup(pct(25.0)), Rpm::new(1800.0));
    }

    #[test]
    fn temperature_cap_excludes_hot_candidates() {
        let model = ServerPowerModel::paper_fit();
        let g = grid();
        let rpms: Vec<Rpm> = g.rpm_axis().iter().map(|&r| Rpm::new(r)).collect();
        let bins = vec![pct(100.0)];
        let lut = build_lut(
            &model,
            |u, rpm| g.temp(u, rpm),
            &rpms,
            &bins,
            Celsius::new(75.0),
        )
        .unwrap();
        // 1800 RPM at 100 % → 86 °C > 75 °C, must not be chosen even
        // though its fan power is lowest.
        assert!(lut.lookup(Utilization::FULL) > Rpm::new(1800.0));
    }

    #[test]
    fn impossible_cap_falls_back_to_max_cooling() {
        let model = ServerPowerModel::paper_fit();
        let rpms = [Rpm::new(1800.0), Rpm::new(4200.0)];
        let bins = vec![pct(100.0)];
        let lut = build_lut(
            &model,
            |_, _| Celsius::new(99.0),
            &rpms,
            &bins,
            Celsius::new(75.0),
        )
        .unwrap();
        assert_eq!(lut.lookup(Utilization::FULL), Rpm::new(4200.0));
    }

    #[test]
    fn empty_inputs_rejected() {
        let model = ServerPowerModel::paper_fit();
        assert!(matches!(
            build_lut(
                &model,
                |_, _| Celsius::new(50.0),
                &[],
                &[pct(100.0)],
                Celsius::new(75.0)
            ),
            Err(LutBuildError::NoCandidates)
        ));
        assert!(matches!(
            build_lut(
                &model,
                |_, _| Celsius::new(50.0),
                &[Rpm::new(1800.0)],
                &[],
                Celsius::new(75.0)
            ),
            Err(LutBuildError::NoBins)
        ));
        // Bins not reaching 100 % → table error.
        assert!(matches!(
            build_lut(
                &model,
                |_, _| Celsius::new(50.0),
                &[Rpm::new(1800.0)],
                &[pct(50.0)],
                Celsius::new(75.0)
            ),
            Err(LutBuildError::Table(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(LutBuildError::NoCandidates
            .to_string()
            .contains("candidate"));
        assert!(LutBuildError::NoBins.to_string().contains("bin"));
        assert!(LutBuildError::BadGrid { what: "x".into() }
            .to_string()
            .contains('x'));
    }
}
