//! Criterion bench for the **Fig. 1** reproduction: full-protocol
//! thermal-transient experiments (cold soak, stabilization, 30-minute
//! loaded run, cooldown) at the fan-speed extremes, plus the raw
//! thermal-network stepping kernel.
//!
//! Run with `cargo bench -p leakctl-bench --bench fig1_transients`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use leakctl::prelude::*;
use leakctl::RunOptions;
use leakctl_bench::SteppingKernel;
use leakctl_control::FixedSpeedController;

/// One full Fig. 1(a)-style protocol run at a fixed fan speed.
fn transient_run(rpm: f64, seed: u64) -> f64 {
    let profile =
        Profile::constant(Utilization::FULL, SimDuration::from_mins(30)).expect("static profile");
    let mut controller = FixedSpeedController::new(Rpm::new(rpm));
    let options = RunOptions {
        record: false,
        ..RunOptions::default()
    };
    let outcome =
        leakctl::run_experiment(&options, profile, &mut controller, seed).expect("run succeeds");
    outcome.metrics.max_temp.degrees()
}

fn bench_fig1(c: &mut Criterion) {
    // One-shot shape report so bench logs double as a regeneration.
    let hot = transient_run(1800.0, 42);
    let cold = transient_run(4200.0, 42);
    eprintln!("[fig1] steady max temp: 1800 RPM -> {hot:.1} C, 4200 RPM -> {cold:.1} C");
    assert!(hot > cold + 15.0, "fan-speed spread must be tens of °C");

    let mut group = c.benchmark_group("fig1_transients");
    group.sample_size(10);
    group.bench_function("protocol_run_1800rpm_100pct", |b| {
        b.iter(|| transient_run(1800.0, 42))
    });
    group.bench_function("protocol_run_4200rpm_100pct", |b| {
        b.iter(|| transient_run(4200.0, 42))
    });
    group.bench_function("server_step_1s", |b| {
        let mut server = Server::new(ServerConfig::default(), 1).expect("server builds");
        b.iter(|| {
            server
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .expect("step succeeds");
            server.max_die_temperature()
        })
    });
    group.finish();

    // Throughput group: steps/second of the stepping engine, cached vs
    // the stateless per-call-assembly wrapper, plus the whole server.
    // Each bench iteration runs a block of steps so per-iteration
    // timing overhead is negligible; the one-shot eprintln reports the
    // derived throughput for bench-log trend reading.
    const BLOCK: u64 = 10_000;
    let mut group = c.benchmark_group("steps_per_sec");
    group.sample_size(10);
    group.bench_function("network_cached_10k", |b| {
        let mut kernel = SteppingKernel::new();
        b.iter(|| {
            kernel.step_cached(BLOCK);
            kernel.max_temperature()
        })
    });
    group.bench_function("network_stateless_10k", |b| {
        let mut kernel = SteppingKernel::new();
        b.iter(|| {
            kernel.step_stateless(BLOCK);
            kernel.max_temperature()
        })
    });
    group.bench_function("server_10k", |b| {
        let mut server = Server::new(ServerConfig::default(), 1).expect("server builds");
        b.iter(|| {
            for _ in 0..BLOCK {
                server
                    .step(SimDuration::from_secs(1), Utilization::FULL)
                    .expect("step succeeds");
            }
            server.max_die_temperature()
        })
    });
    group.finish();

    // One-shot derived steps/sec summary.
    let mut kernel = SteppingKernel::new();
    let start = Instant::now();
    kernel.step_cached(10 * BLOCK);
    let cached_sps = 10.0 * BLOCK as f64 / start.elapsed().as_secs_f64();
    eprintln!(
        "[fig1] cached stepping engine: {cached_sps:.0} steps/s (settled at {:.1} C)",
        kernel.max_temperature().degrees()
    );
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
