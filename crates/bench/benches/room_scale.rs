//! Criterion bench for **room-scale** stepping: full machine rooms
//! (per-rack fleets coupled through the CRAH/plenum/aisle air-volume
//! network) and the room air network alone at CSR-scale rack counts.
//!
//! Run with `cargo bench -p leakctl-bench --bench room_scale`.

use criterion::{criterion_group, criterion_main, Criterion};
use leakctl_bench::{RoomAirKernel, RoomKernel};

fn bench_room_scale(c: &mut Criterion) {
    // One-shot shape report: the coupled room must develop gradients.
    let mut probe = RoomKernel::new(1, 2, 8);
    probe.step(300);
    let room = probe.room();
    eprintln!(
        "[room_scale] 2-rack probe after 300 s: max die {:.1} C, return {:.1} C",
        room.max_die_temperature().degrees(),
        room.return_temperature().degrees()
    );
    assert!(room.max_die_temperature().degrees() > 30.0);
    assert!(room.return_temperature().degrees() > 18.0);

    let mut group = c.benchmark_group("room_scale");
    group.sample_size(10);
    const BLOCK: u64 = 60;
    // Full coupled rooms: operator-split step (serial air network +
    // cross-rack-sharded fleet phase), two floor sizes.
    for (rows, cols, spr) in [(1usize, 4usize, 16usize), (2, 4, 32)] {
        let servers = rows * cols * spr;
        group.bench_function(format!("room{servers}_60steps"), |b| {
            let mut kernel = RoomKernel::new(rows, cols, spr);
            kernel.step(1);
            b.iter(|| {
                kernel.step(BLOCK);
                kernel.room().max_die_temperature()
            })
        });
    }
    // The air network alone: dense (8 racks) vs CSR (64 racks, above
    // the node threshold) with per-step power refresh.
    for racks in [8usize, 64] {
        group.bench_function(format!("room_air{racks}_200steps"), |b| {
            let mut kernel = RoomAirKernel::new(racks);
            kernel.step(1);
            b.iter(|| {
                kernel.step(200);
                kernel.max_temperature()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_room_scale);
criterion_main!(benches);
