//! Criterion bench for the **Fig. 3** reproduction: recorded Test-3
//! runs under the three controllers (temperature/fan traces sampled
//! every 10 s).
//!
//! Run with `cargo bench -p leakctl-bench --bench fig3_runtime`.

use criterion::{criterion_group, criterion_main, Criterion};
use leakctl::{fig3, RunOptions};
use leakctl_bench::quick_pipeline;

fn bench_fig3(c: &mut Criterion) {
    let pipeline = quick_pipeline(42);

    // One-shot regeneration with the qualitative checks the paper makes.
    let fig = fig3(&RunOptions::default(), pipeline.lut.clone(), 42).expect("fig3 runs");
    let spread = |label: &str| {
        let s = fig
            .temperature
            .iter()
            .find(|s| s.label == label)
            .expect("series exists");
        let temps: Vec<f64> = s
            .points
            .iter()
            .filter(|(m, _)| *m >= 5.0 && *m <= 85.0)
            .map(|(_, t)| *t)
            .collect();
        let hi = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lo = temps.iter().copied().fold(f64::INFINITY, f64::min);
        (lo, hi)
    };
    let (d_lo, d_hi) = spread("Default");
    let (b_lo, b_hi) = spread("Bang");
    let (l_lo, l_hi) = spread("LUT");
    eprintln!(
        "[fig3] Default [{d_lo:.1},{d_hi:.1}] C, Bang [{b_lo:.1},{b_hi:.1}] C, LUT [{l_lo:.1},{l_hi:.1}] C"
    );
    assert!(d_hi < b_hi, "default runs colder than bang-bang");
    assert!(l_hi - l_lo < b_hi - b_lo, "LUT steadier than bang-bang");

    let mut group = c.benchmark_group("fig3_runtime");
    group.sample_size(10);
    group.bench_function("three_controllers_recorded", |b| {
        b.iter(|| fig3(&RunOptions::default(), pipeline.lut.clone(), 42).expect("fig3 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
