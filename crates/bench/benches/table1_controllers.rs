//! Criterion bench for the **Table I** reproduction: one 80-minute
//! controller evaluation per scheme on Test-3, plus the whole-table
//! generation.
//!
//! Run with `cargo bench -p leakctl-bench --bench table1_controllers`.

use criterion::{criterion_group, criterion_main, Criterion};
use leakctl::prelude::*;
use leakctl::{generate_table1, RunOptions, Table1Options};
use leakctl_bench::quick_pipeline;
use leakctl_workload::suite;

/// Shared run configuration for every benchmark in this file: the
/// paper's protocol without time-series recording. Hoisted so per-
/// function setup cannot drift apart.
fn shared_run_options() -> RunOptions {
    RunOptions {
        record: false,
        ..RunOptions::default()
    }
}

fn run_once(options: &RunOptions, controller: &mut dyn FanController, seed: u64) -> f64 {
    let outcome =
        leakctl::run_experiment(options, suite::test3(), controller, seed).expect("run succeeds");
    outcome.metrics.total_energy.as_kwh().value()
}

fn bench_table1(c: &mut Criterion) {
    let pipeline = quick_pipeline(42);
    let options = shared_run_options();

    // One-shot regeneration + ordering check.
    let mut default = FixedSpeedController::paper_default();
    let mut bang = BangBangController::paper_default();
    let mut lut = LutController::paper_default(pipeline.lut.clone());
    let (e_def, e_bang, e_lut) = (
        run_once(&options, &mut default, 42),
        run_once(&options, &mut bang, 42),
        run_once(&options, &mut lut, 42),
    );
    eprintln!("[table1] Test-3 energy: Default {e_def:.4}, Bang {e_bang:.4}, LUT {e_lut:.4} kWh");
    assert!(e_lut <= e_def, "LUT must not exceed Default energy");

    let mut group = c.benchmark_group("table1_controllers");
    group.sample_size(10);
    group.bench_function("run80min_default", |b| {
        let mut ctl = FixedSpeedController::paper_default();
        b.iter(|| run_once(&options, &mut ctl, 42))
    });
    group.bench_function("run80min_bangbang", |b| {
        let mut ctl = BangBangController::paper_default();
        b.iter(|| run_once(&options, &mut ctl, 42))
    });
    group.bench_function("run80min_lut", |b| {
        let mut ctl = LutController::paper_default(pipeline.lut.clone());
        b.iter(|| run_once(&options, &mut ctl, 42))
    });
    // The full 4-test × 3-controller table (12 × 80-minute runs plus
    // the idle reference measurement).
    group.bench_function("full_table", |b| {
        let table_options = Table1Options {
            run: shared_run_options(),
            seed: 42,
            lut: pipeline.lut.clone(),
        };
        b.iter(|| generate_table1(&table_options).expect("table generation succeeds"))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
