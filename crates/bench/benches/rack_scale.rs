//! Criterion bench for **rack-scale** stepping: the shared-factorization
//! batch engine against independent per-server solves, thread-sharded
//! stepping, hash-grouped heterogeneous (mixed-SKU) fleets, and the
//! CSR sparse backend against dense at room-scale node counts.
//!
//! Run with `cargo bench -p leakctl-bench --bench rack_scale`.

use criterion::{criterion_group, criterion_main, Criterion};
use leakctl_bench::{room_network, HeteroRackKernel, RackKernel, ShardedRackKernel};
use leakctl_thermal::{
    CsrTransientSolver, DenseTransientSolver, Integrator, ShardPlan, TransientSolver,
};
use leakctl_units::{AirFlow, Celsius, SimDuration, Watts};

fn bench_rack_scale(c: &mut Criterion) {
    // One-shot shape report: the batched kernel must warm its dies.
    let mut probe = RackKernel::new(16);
    probe.step_batched(300);
    let t = probe.max_temperature().degrees();
    eprintln!("[rack_scale] 16-lane kernel after 300 s: max {t:.1} C");
    assert!(t > 30.0, "batched lanes must heat up");

    let mut group = c.benchmark_group("rack_scale");
    group.sample_size(10);
    // Batched stepping at two rack sizes; one iteration = a block of
    // steps so per-iteration overhead is negligible.
    const BLOCK: u64 = 200;
    for servers in [32usize, 128] {
        group.bench_function(format!("batch{servers}_200steps"), |b| {
            let mut kernel = RackKernel::new(servers);
            kernel.step_batched(1);
            b.iter(|| {
                kernel.step_batched(BLOCK);
                kernel.max_temperature()
            })
        });
    }
    group.bench_function("batch128_dynamic_200steps", |b| {
        let mut kernel = RackKernel::new(128);
        kernel.step_batched_dynamic(1);
        b.iter(|| {
            kernel.step_batched_dynamic(BLOCK);
            kernel.max_temperature()
        })
    });
    // Independent per-server solvers on the same lanes, for the
    // apples-to-apples thermal-only comparison.
    group.bench_function("scalar128_200steps", |b| {
        let mut solvers: Vec<(leakctl_thermal::ThermalNetwork, _, _)> = (0..128)
            .map(|_| {
                let (mut net, dies, flow) = leakctl_bench::server_like_network(2);
                net.set_flow(flow, AirFlow::from_cfm(250.0)).unwrap();
                for &die in &dies {
                    net.set_power(die, Watts::new(80.0)).unwrap();
                }
                let state = net.uniform_state(Celsius::new(24.0));
                let solver = TransientSolver::new(&net);
                (net, state, solver)
            })
            .collect();
        let dt = SimDuration::from_secs(1);
        b.iter(|| {
            for _ in 0..BLOCK {
                for (net, state, solver) in &mut solvers {
                    solver
                        .step(net, state, dt, Integrator::BackwardEuler)
                        .unwrap();
                }
            }
            solvers[0].1.max_temperature()
        })
    });
    group.finish();

    // Thread-sharded packed stepping: single worker vs the
    // environment's plan (LEAKCTL_THREADS / machine parallelism).
    // Results are bit-identical; only wall-clock moves.
    let mut group = c.benchmark_group("rack_sharded");
    group.sample_size(10);
    let env_threads = ShardPlan::from_env().threads();
    for threads in [1usize, env_threads] {
        group.bench_function(format!("shard128_t{threads}_200steps"), |b| {
            let mut kernel = ShardedRackKernel::new(128, threads);
            kernel.step_many(1);
            b.iter(|| {
                kernel.step_many(BLOCK);
                kernel.max_temperature()
            })
        });
        if env_threads == 1 {
            break;
        }
    }
    group.finish();

    // Heterogeneous fleet: 128 servers cycling through 1/2/3-socket
    // SKUs, hash-grouped so each SKU batches through its own shared
    // factorization. Tracked so mixed-fleet batching has a number.
    let mut probe = HeteroRackKernel::new(128);
    assert_eq!(probe.group_count(), 3, "three SKUs in the mix");
    probe.step(300);
    let t = probe.max_temperature().degrees();
    eprintln!("[rack_scale] 128-lane mixed-SKU fleet after 300 s: max {t:.1} C");
    assert!(t > 30.0, "heterogeneous lanes must heat up");
    let mut group = c.benchmark_group("heterogeneous_fleet");
    group.sample_size(10);
    for servers in [32usize, 128] {
        group.bench_function(format!("hetero{servers}_3sku_200steps"), |b| {
            let mut kernel = HeteroRackKernel::new(servers);
            kernel.step(1);
            b.iter(|| {
                kernel.step(BLOCK);
                kernel.max_temperature()
            })
        });
    }
    group.finish();

    // CSR vs dense at a room-scale node count (211 nodes).
    let mut group = c.benchmark_group("csr_vs_dense");
    group.sample_size(10);
    let sections = 70;
    for sparse in [false, true] {
        let name = if sparse {
            "room211_csr_50steps"
        } else {
            "room211_dense_50steps"
        };
        group.bench_function(name, |b| {
            let (mut net, dies, flow) = room_network(sections);
            net.set_flow(flow, AirFlow::new(0.5)).unwrap();
            for (i, &die) in dies.iter().enumerate() {
                net.set_power(die, Watts::new(60.0 + (i % 7) as f64))
                    .unwrap();
            }
            let mut state = net.uniform_state(Celsius::new(18.0));
            let dt = SimDuration::from_secs(1);
            if sparse {
                let mut solver = CsrTransientSolver::with_backend(&net);
                b.iter(|| {
                    for _ in 0..50 {
                        solver
                            .step(&net, &mut state, dt, Integrator::BackwardEuler)
                            .unwrap();
                    }
                    state.max_temperature()
                })
            } else {
                let mut solver = DenseTransientSolver::with_backend(&net);
                b.iter(|| {
                    for _ in 0..50 {
                        solver
                            .step(&net, &mut state, dt, Integrator::BackwardEuler)
                            .unwrap();
                    }
                    state.max_temperature()
                })
            }
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rack_scale);
criterion_main!(benches);
