//! Ablation benches for the design choices called out in `DESIGN.md`:
//!
//! - **Solver** — integrator choice and step size for the thermal
//!   network (accuracy report + timing),
//! - **Rate limit** — the LUT's 1-minute change lockout versus
//!   alternatives (fan-change count / energy report + timing),
//! - **LUT resolution** — number of utilization bins,
//! - **Poll period** — 1-second utilization polling versus CSTH-rate,
//! - **Bang-bang band** — the paper's 65–75 °C band versus narrower and
//!   wider bands.
//!
//! Each ablation prints its findings once (so bench logs double as the
//! ablation tables in EXPERIMENTS.md) and then times the representative
//! configuration.
//!
//! Run with `cargo bench -p leakctl-bench --bench ablations`.

use criterion::{criterion_group, criterion_main, Criterion};
use leakctl::prelude::*;
use leakctl::{RunMetrics, RunOptions};
use leakctl_control::{BangBangController, LutController};
use leakctl_thermal::{Coupling, Integrator, ThermalNetworkBuilder};
use leakctl_units::{Celsius, ThermalCapacitance, ThermalConductance, Watts};
use leakctl_workload::suite;

fn run_test3(controller: &mut dyn FanController, seed: u64) -> RunMetrics {
    let options = RunOptions {
        record: false,
        ..RunOptions::default()
    };
    leakctl::run_experiment(&options, suite::test3(), controller, seed)
        .expect("run succeeds")
        .metrics
}

/// Single-RC reference problem with a 100-second time constant.
fn reference_network() -> (leakctl_thermal::ThermalNetwork, leakctl_thermal::NodeId) {
    let mut b = ThermalNetworkBuilder::new();
    let die = b.add_node("die", ThermalCapacitance::new(200.0));
    let amb = b.add_boundary("amb", Celsius::new(24.0));
    b.connect(
        die,
        amb,
        Coupling::Conductance(ThermalConductance::new(2.0)),
    )
    .expect("static network");
    let mut net = b.build().expect("static network");
    net.set_power(die, Watts::new(100.0)).expect("valid node");
    (net, die)
}

fn ablate_solver(c: &mut Criterion) {
    // Accuracy after 300 s at dt = 1 s versus the analytic solution.
    let analytic = 74.0 + (24.0 - 74.0) * (-3.0f64).exp();
    eprintln!("[ablate_solver] error vs analytic after 300 s, dt = 1 s:");
    for method in [
        Integrator::ForwardEuler,
        Integrator::Rk4,
        Integrator::ExponentialEuler,
        Integrator::BackwardEuler,
    ] {
        let (net, die) = reference_network();
        let mut st = net.uniform_state(Celsius::new(24.0));
        net.run(
            &mut st,
            SimDuration::from_secs(300),
            SimDuration::from_secs(1),
            method,
        )
        .expect("integration succeeds");
        let err = (net.temperature(&st, die).degrees() - analytic).abs();
        eprintln!("  {method:?}: |err| = {err:.2e} K");
    }

    let mut group = c.benchmark_group("ablate_solver");
    for method in [
        Integrator::ForwardEuler,
        Integrator::Rk4,
        Integrator::ExponentialEuler,
        Integrator::BackwardEuler,
    ] {
        group.bench_function(format!("{method:?}_300steps"), |b| {
            let (net, _) = reference_network();
            b.iter(|| {
                let mut st = net.uniform_state(Celsius::new(24.0));
                net.run(
                    &mut st,
                    SimDuration::from_secs(300),
                    SimDuration::from_secs(1),
                    method,
                )
                .expect("integration succeeds");
                st
            })
        });
    }
    group.finish();
}

/// A finer-than-paper table (four speed levels) used to study rate
/// limiting under a noisy workload: the stochastic Test-4 utilization
/// wanders across the 50 % breakpoint, so an unlimited controller flaps.
fn fine_lut() -> LookupTable {
    LookupTable::new(vec![
        (
            Utilization::from_percent(10.0).expect("valid"),
            Rpm::new(1800.0),
        ),
        (
            Utilization::from_percent(30.0).expect("valid"),
            Rpm::new(2000.0),
        ),
        (
            Utilization::from_percent(50.0).expect("valid"),
            Rpm::new(2200.0),
        ),
        (
            Utilization::from_percent(100.0).expect("valid"),
            Rpm::new(2400.0),
        ),
    ])
    .expect("static table valid")
}

fn run_profile(
    controller: &mut dyn FanController,
    profile: leakctl_workload::Profile,
    seed: u64,
) -> RunMetrics {
    let options = RunOptions {
        record: false,
        ..RunOptions::default()
    };
    leakctl::run_experiment(&options, profile, controller, seed)
        .expect("run succeeds")
        .metrics
}

fn ablate_rate_limit(c: &mut Criterion) {
    // Test-4's queueing noise crosses the fine table's 50 % breakpoint
    // repeatedly — exactly the "unstable workload" case the paper's
    // 1-minute lockout exists for.
    let (profile, _) = suite::test4(42);
    eprintln!("[ablate_rate_limit] fine LUT on Test-4 with varying change lockout:");
    for secs in [0u64, 30, 60, 300] {
        let mut ctl = LutController::new(fine_lut(), SimDuration::from_secs(secs));
        let m = run_profile(&mut ctl, profile.clone(), 42);
        eprintln!(
            "  {secs:>3} s: {:.4} kWh, {:>3} changes, max {:.1} C",
            m.total_energy.as_kwh().value(),
            m.fan_changes,
            m.max_temp.degrees()
        );
    }
    let mut group = c.benchmark_group("ablate_rate_limit");
    group.sample_size(10);
    group.bench_function("fine_lut_60s_lockout_test4", |b| {
        let mut ctl = LutController::paper_default(fine_lut());
        b.iter(|| run_profile(&mut ctl, profile.clone(), 42))
    });
    group.finish();
}

fn ablate_lut_resolution(c: &mut Criterion) {
    eprintln!("[ablate_lut_resolution] table granularity on Test-3:");
    let single =
        LookupTable::new(vec![(Utilization::FULL, Rpm::new(2400.0))]).expect("valid table");
    let paper_like = LookupTable::new(vec![
        (
            Utilization::from_percent(10.0).expect("valid"),
            Rpm::new(1800.0),
        ),
        (Utilization::FULL, Rpm::new(2400.0)),
    ])
    .expect("valid table");
    for (name, table) in [
        ("1 bin (fixed 2400)", single),
        ("2 bins (paper pipeline)", paper_like),
        ("4 bins (fine)", fine_lut()),
    ] {
        let mut ctl = LutController::paper_default(table);
        let m = run_test3(&mut ctl, 42);
        eprintln!(
            "  {name:>24}: {:.4} kWh, {:>2} changes, avg {:.0} RPM, max {:.1} C",
            m.total_energy.as_kwh().value(),
            m.fan_changes,
            m.avg_rpm.value(),
            m.max_temp.degrees()
        );
    }
    let mut group = c.benchmark_group("ablate_lut_resolution");
    group.sample_size(10);
    group.bench_function("fine_lut_test3", |b| {
        let mut ctl = LutController::paper_default(fine_lut());
        b.iter(|| run_test3(&mut ctl, 42))
    });
    group.finish();
}

fn ablate_poll_period(c: &mut Criterion) {
    // A LUT variant polled at CSTH rate instead of every second.
    struct SlowLut(LutController);
    impl FanController for SlowLut {
        fn name(&self) -> &str {
            "LUT-10s"
        }
        fn poll_period(&self) -> SimDuration {
            SimDuration::from_secs(10)
        }
        fn decide(&mut self, inputs: &leakctl_control::ControlInputs) -> Option<Rpm> {
            self.0.decide(inputs)
        }
        fn reset(&mut self) {
            self.0.reset();
        }
    }
    // Test-2's sudden high/low swings are where reaction latency shows.
    let profile = suite::test2();
    let mut fast = LutController::paper_default(fine_lut());
    let m_fast = run_profile(&mut fast, profile.clone(), 42);
    let mut slow = SlowLut(LutController::paper_default(fine_lut()));
    let m_slow = run_profile(&mut slow, profile.clone(), 42);
    eprintln!(
        "[ablate_poll_period] Test-2, 1 s poll: {:.4} kWh max {:.1} C, {} changes | \
         10 s poll: {:.4} kWh max {:.1} C, {} changes",
        m_fast.total_energy.as_kwh().value(),
        m_fast.max_temp.degrees(),
        m_fast.fan_changes,
        m_slow.total_energy.as_kwh().value(),
        m_slow.max_temp.degrees(),
        m_slow.fan_changes
    );
    let mut group = c.benchmark_group("ablate_poll_period");
    group.sample_size(10);
    group.bench_function("poll_10s_test2", |b| {
        let mut ctl = SlowLut(LutController::paper_default(fine_lut()));
        b.iter(|| run_profile(&mut ctl, profile.clone(), 42))
    });
    group.finish();
}

fn ablate_band(c: &mut Criterion) {
    eprintln!("[ablate_band] bang-bang comfort band on Test-3:");
    for (lo, hi) in [(60.0, 75.0), (65.0, 75.0), (70.0, 75.0)] {
        let mut ctl = BangBangController::with_band(Celsius::new(lo), Celsius::new(hi));
        let m = run_test3(&mut ctl, 42);
        eprintln!(
            "  {lo:.0}-{hi:.0} C: {:.4} kWh, {} changes, max {:.1} C",
            m.total_energy.as_kwh().value(),
            m.fan_changes,
            m.max_temp.degrees()
        );
    }
    let mut group = c.benchmark_group("ablate_band");
    group.sample_size(10);
    group.bench_function("paper_band_test3", |b| {
        let mut ctl = BangBangController::paper_default();
        b.iter(|| run_test3(&mut ctl, 42))
    });
    group.finish();
}

criterion_group!(
    benches,
    ablate_solver,
    ablate_rate_limit,
    ablate_lut_resolution,
    ablate_poll_period,
    ablate_band
);
criterion_main!(benches);
