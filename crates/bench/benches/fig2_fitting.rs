//! Criterion bench for the **Fig. 2** reproduction: characterization
//! measurement, the Eqn. 2 model fit, and LUT generation.
//!
//! Run with `cargo bench -p leakctl-bench --bench fig2_fitting`.

use criterion::{criterion_group, criterion_main, Criterion};
use leakctl::{build_lut_from_characterization, characterize, fit_models, CharacterizeOptions};
use leakctl_bench::quick_pipeline;
use leakctl_power::fit;
use leakctl_units::{Rpm, SimDuration, Utilization};

fn bench_fig2(c: &mut Criterion) {
    // Regenerate once and report the headline numbers.
    let pipeline = quick_pipeline(42);
    eprintln!(
        "[fig2] fitted k1 {:.4}, k2 {:.4}, k3 {:.5}, rmse {:.2} W, acc {:.1}%",
        pipeline.fitted.k1,
        pipeline.fitted.k2,
        pipeline.fitted.k3,
        pipeline.fitted.goodness.rmse,
        pipeline.fitted.goodness.accuracy_percent
    );
    let full_lut = pipeline.lut.lookup(Utilization::FULL);
    eprintln!(
        "[fig2] LUT at 100% -> {:.0} RPM (paper: 2400)",
        full_lut.value()
    );

    let mut group = c.benchmark_group("fig2_fitting");
    group.sample_size(10);

    // One characterization grid point at full protocol cost.
    group.bench_function("characterize_single_point", |b| {
        let options = CharacterizeOptions {
            utilizations: vec![Utilization::FULL],
            fan_speeds: vec![Rpm::new(2400.0)],
            warmup: SimDuration::from_mins(10),
            stabilize: SimDuration::from_mins(5),
            run: SimDuration::from_mins(30),
            measure_window: SimDuration::from_mins(10),
            ..CharacterizeOptions::paper()
        };
        b.iter(|| characterize(&options, 42).expect("characterization succeeds"))
    });

    // The exponential fit on paper-shaped data.
    group.bench_function("exponential_fit", |b| {
        let xs: Vec<f64> = (45..=88).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 9.0 + 0.3231 * (0.04749 * x).exp())
            .collect();
        b.iter(|| fit::exponential(&xs, &ys).expect("fit succeeds"))
    });

    // The full joint fit over a measured dataset.
    group.bench_function("joint_fit_quick_grid", |b| {
        b.iter(|| fit_models(&pipeline.data).expect("fit succeeds"))
    });

    // LUT generation from the dataset.
    group.bench_function("lut_build", |b| {
        b.iter(|| {
            build_lut_from_characterization(&pipeline.data, &pipeline.fitted)
                .expect("LUT build succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
