//! Shared plumbing for the reproduction binaries (`repro-*`) and the
//! Criterion benches: one place that runs the paper's full pipeline —
//! characterize → fit → build LUT — at paper fidelity or in a reduced
//! "quick" configuration.

#![warn(missing_docs)]

pub mod building;
pub mod faults;
pub mod sched;
pub mod setpoint;

use leakctl::prelude::*;
use leakctl::{
    build_lut_from_characterization, characterize, fit_models, CharacterizationData,
    CharacterizeOptions, FittedModels,
};

/// Everything the evaluation stages need from the identification
/// stages.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The measured characterization grid.
    pub data: CharacterizationData,
    /// The identified Eqn. 2 constants.
    pub fitted: FittedModels,
    /// The generated optimal-fan-speed table.
    pub lut: LookupTable,
}

/// Runs the identification pipeline at full paper fidelity
/// (8 utilizations × 5 fan speeds, 45-minute protocol per point).
///
/// # Panics
///
/// Panics when any stage fails — the calibrated configuration is known
/// to succeed, so a failure indicates a regression worth crashing on in
/// a reproduction binary.
#[must_use]
pub fn paper_pipeline(seed: u64) -> Pipeline {
    pipeline(&CharacterizeOptions::paper(), seed)
}

/// Runs the identification pipeline on the reduced grid (for smoke
/// tests and ablations).
///
/// # Panics
///
/// Panics when any stage fails.
#[must_use]
pub fn quick_pipeline(seed: u64) -> Pipeline {
    pipeline(&CharacterizeOptions::quick(), seed)
}

fn pipeline(options: &CharacterizeOptions, seed: u64) -> Pipeline {
    let data = characterize(options, seed).expect("characterization succeeds");
    let fitted = fit_models(&data).expect("fitting succeeds");
    let lut = build_lut_from_characterization(&data, &fitted).expect("LUT build succeeds");
    Pipeline { data, fitted, lut }
}

/// The seed used by every reproduction binary, so their outputs agree
/// with each other and with EXPERIMENTS.md.
pub const REPRO_SEED: u64 = 42;

/// A server-shaped thermal network with a configurable socket count:
/// ambient boundary, shared DIMM air volume, two DIMM banks, and
/// `sockets` die→sink→air chains on one chassis flow channel.
///
/// Returns the network, the die nodes (one per socket) and the chassis
/// flow channel. Every call builds an identical structure, so the
/// instances share a
/// [`structure_hash`](leakctl_thermal::ThermalNetwork::structure_hash)
/// and can be pooled in one [`BatchSolver`](leakctl_thermal::BatchSolver).
///
/// # Panics
///
/// Panics when construction fails — the topology is static and known
/// to build.
#[must_use]
pub fn server_like_network(
    sockets: usize,
) -> (
    leakctl_thermal::ThermalNetwork,
    Vec<leakctl_thermal::NodeId>,
    leakctl_thermal::FlowChannelId,
) {
    use leakctl_thermal::{ConvectionModel, Coupling, ThermalNetworkBuilder};
    use leakctl_units::{AirFlow, Celsius, ThermalCapacitance, ThermalConductance};

    let mut b = ThermalNetworkBuilder::new();
    let ambient = b.add_boundary("ambient", Celsius::new(24.0));
    let flow = b.add_flow_channel("chassis");
    let sink_conv =
        ConvectionModel::turbulent(ThermalConductance::new(3.4), AirFlow::from_cfm(300.0));
    let dimm_conv =
        ConvectionModel::turbulent(ThermalConductance::new(12.0), AirFlow::from_cfm(300.0));

    let air_dimm = b.add_node("air_dimm", ThermalCapacitance::new(15.0));
    b.connect_directed(
        ambient,
        air_dimm,
        Coupling::Advective {
            channel: flow,
            fraction: 1.0,
        },
    )
    .expect("static edge");
    b.connect(
        air_dimm,
        ambient,
        Coupling::Conductance(ThermalConductance::new(0.5)),
    )
    .expect("static edge");
    for bank in 0..2 {
        let node = b.add_node(&format!("dimm_bank{bank}"), ThermalCapacitance::new(900.0));
        b.connect(
            node,
            air_dimm,
            Coupling::Convective {
                channel: flow,
                model: dimm_conv,
            },
        )
        .expect("static edge");
    }
    let mut dies = Vec::with_capacity(sockets);
    for s in 0..sockets {
        let die = b.add_node(&format!("cpu{s}_die"), ThermalCapacitance::new(80.0));
        let sink = b.add_node(&format!("cpu{s}_sink"), ThermalCapacitance::new(400.0));
        let air = b.add_node(&format!("cpu{s}_air"), ThermalCapacitance::new(15.0));
        b.connect(
            die,
            sink,
            Coupling::Conductance(ThermalConductance::new(10.0)),
        )
        .expect("static edge");
        b.connect(
            sink,
            air,
            Coupling::Convective {
                channel: flow,
                model: sink_conv,
            },
        )
        .expect("static edge");
        b.connect_directed(
            air_dimm,
            air,
            Coupling::Advective {
                channel: flow,
                fraction: 1.0 / sockets as f64,
            },
        )
        .expect("static edge");
        b.connect(
            air,
            ambient,
            Coupling::Conductance(ThermalConductance::new(0.5)),
        )
        .expect("static edge");
        dies.push(die);
    }
    let net = b.build().expect("static network builds");
    (net, dies, flow)
}

/// The canonical 3-socket stepping-kernel network (see
/// [`server_like_network`]), with 90 W on the first die.
///
/// Returns the network, the first die node and the chassis flow
/// channel.
///
/// # Panics
///
/// Panics when construction fails — the topology is static and known
/// to build.
#[must_use]
pub fn bench_network() -> (
    leakctl_thermal::ThermalNetwork,
    leakctl_thermal::NodeId,
    leakctl_thermal::FlowChannelId,
) {
    use leakctl_units::Watts;
    let (mut net, dies, flow) = server_like_network(3);
    let die = dies[0];
    net.set_power(die, Watts::new(90.0))
        .expect("die accepts power");
    (net, die, flow)
}

/// A room-scale thermal network: `sections` server-like die→sink→air
/// chains strung along one airflow path (each section's air volume is
/// advectively fed by the previous one), all on a single flow channel —
/// `3·sections + 1` capacitive nodes with sparse structure, the regime
/// the CSR backend exists for.
///
/// Returns the network, the die nodes and the flow channel.
///
/// # Panics
///
/// Panics when construction fails — the topology is static and known
/// to build.
#[must_use]
pub fn room_network(
    sections: usize,
) -> (
    leakctl_thermal::ThermalNetwork,
    Vec<leakctl_thermal::NodeId>,
    leakctl_thermal::FlowChannelId,
) {
    use leakctl_thermal::{ConvectionModel, Coupling, ThermalNetworkBuilder};
    use leakctl_units::{AirFlow, Celsius, ThermalCapacitance, ThermalConductance};

    assert!(sections > 0, "room needs at least one section");
    let mut b = ThermalNetworkBuilder::new();
    let ambient = b.add_boundary("crah_supply", Celsius::new(18.0));
    let flow = b.add_flow_channel("aisle");
    let sink_conv =
        ConvectionModel::turbulent(ThermalConductance::new(3.4), AirFlow::from_cfm(300.0));
    let plenum = b.add_node("plenum", ThermalCapacitance::new(200.0));
    b.connect_directed(
        ambient,
        plenum,
        Coupling::Advective {
            channel: flow,
            fraction: 1.0,
        },
    )
    .expect("static edge");
    b.connect(
        plenum,
        ambient,
        Coupling::Conductance(ThermalConductance::new(1.0)),
    )
    .expect("static edge");
    let mut upstream = plenum;
    let mut dies = Vec::with_capacity(sections);
    for s in 0..sections {
        let die = b.add_node(&format!("s{s}_die"), ThermalCapacitance::new(80.0));
        let sink = b.add_node(&format!("s{s}_sink"), ThermalCapacitance::new(400.0));
        let air = b.add_node(&format!("s{s}_air"), ThermalCapacitance::new(15.0));
        b.connect(
            die,
            sink,
            Coupling::Conductance(ThermalConductance::new(10.0)),
        )
        .expect("static edge");
        b.connect(
            sink,
            air,
            Coupling::Convective {
                channel: flow,
                model: sink_conv,
            },
        )
        .expect("static edge");
        b.connect_directed(
            upstream,
            air,
            Coupling::Advective {
                channel: flow,
                fraction: 1.0,
            },
        )
        .expect("static edge");
        b.connect(
            air,
            ambient,
            Coupling::Conductance(ThermalConductance::new(0.2)),
        )
        .expect("static edge");
        dies.push(die);
        upstream = air;
    }
    let net = b.build().expect("static network builds");
    (net, dies, flow)
}

/// A ready-to-step instance of [`bench_network`] at the canonical
/// operating point (250 CFM, 24 °C start, backward Euler, 1 s steps).
///
/// Every stepping-kernel measurement — the criterion `steps_per_sec`
/// group, its one-shot summary line, and the `repro-perf` JSON report —
/// drives this one configuration, so they cannot silently drift apart.
#[derive(Debug, Clone)]
pub struct SteppingKernel {
    net: leakctl_thermal::ThermalNetwork,
    solver: leakctl_thermal::TransientSolver,
    state: leakctl_thermal::ThermalState,
}

impl SteppingKernel {
    /// Builds the kernel at the canonical operating point.
    ///
    /// # Panics
    ///
    /// Panics when construction fails (static topology, known to
    /// build).
    #[must_use]
    pub fn new() -> Self {
        use leakctl_units::{AirFlow, Celsius};
        let (mut net, _die, ch) = bench_network();
        net.set_flow(ch, AirFlow::from_cfm(250.0))
            .expect("flow set");
        let solver = leakctl_thermal::TransientSolver::new(&net);
        let state = net.uniform_state(Celsius::new(24.0));
        Self { net, solver, state }
    }

    /// Advances `steps` seconds through the persistent cached solver.
    ///
    /// # Panics
    ///
    /// Panics when a step fails (the kernel network is regular).
    pub fn step_cached(&mut self, steps: u64) {
        use leakctl_thermal::Integrator;
        use leakctl_units::SimDuration;
        for _ in 0..steps {
            self.solver
                .step(
                    &self.net,
                    &mut self.state,
                    SimDuration::from_secs(1),
                    Integrator::BackwardEuler,
                )
                .expect("step succeeds");
        }
    }

    /// Advances `steps` seconds through the stateless per-call-assembly
    /// wrapper.
    ///
    /// # Panics
    ///
    /// Panics when a step fails (the kernel network is regular).
    pub fn step_stateless(&mut self, steps: u64) {
        use leakctl_thermal::Integrator;
        use leakctl_units::SimDuration;
        for _ in 0..steps {
            self.net
                .step(
                    &mut self.state,
                    SimDuration::from_secs(1),
                    Integrator::BackwardEuler,
                )
                .expect("step succeeds");
        }
    }

    /// The hottest node temperature of the evolving state (consume the
    /// result so benchmark loops are not optimized away).
    #[must_use]
    pub fn max_temperature(&self) -> leakctl_units::Celsius {
        self.state.max_temperature()
    }
}

impl Default for SteppingKernel {
    fn default() -> Self {
        Self::new()
    }
}

/// A rack of identical server-topology thermal networks stepped
/// through one shared-factorization
/// [`BatchSolver`](leakctl_thermal::BatchSolver) — the measurement
/// kernel behind the `rack_scale` criterion group and the `repro-rack`
/// servers-stepped/sec report.
///
/// Each lane is a separately built 2-socket server network (matching
/// the default `ServerConfig` topology: 9 capacitive nodes, one chassis
/// flow channel) at the canonical 250 CFM operating point. Every step
/// perturbs each lane's die powers — as a real fleet does through the
/// leakage–temperature feedback — so the per-lane source refresh is
/// included in the measurement, then advances all lanes by one
/// backward-Euler second through the batch engine.
#[derive(Debug)]
pub struct RackKernel {
    nets: Vec<leakctl_thermal::ThermalNetwork>,
    packed: leakctl_thermal::PackedLanes,
    dies: Vec<Vec<leakctl_thermal::NodeId>>,
    solver: leakctl_thermal::BatchSolver,
    tick: u64,
}

impl RackKernel {
    /// Builds a kernel of `servers` lanes.
    ///
    /// # Panics
    ///
    /// Panics when construction fails (static topology, known to
    /// build).
    #[must_use]
    pub fn new(servers: usize) -> Self {
        use leakctl_units::{AirFlow, Celsius, Watts};
        let mut nets = Vec::with_capacity(servers);
        let mut states = Vec::with_capacity(servers);
        let mut dies = Vec::with_capacity(servers);
        for lane in 0..servers {
            let (mut net, lane_dies, flow) = server_like_network(2);
            net.set_flow(flow, AirFlow::from_cfm(250.0)).expect("flow");
            for (s, &die) in lane_dies.iter().enumerate() {
                net.set_power(die, Watts::new(80.0 + lane as f64 * 0.1 + s as f64))
                    .expect("power");
            }
            states.push(net.uniform_state(Celsius::new(24.0)));
            dies.push(lane_dies);
            nets.push(net);
        }
        let solver = leakctl_thermal::BatchSolver::new(&nets[0]);
        let packed = leakctl_thermal::PackedLanes::pack(&states);
        Self {
            nets,
            packed,
            dies,
            solver,
            tick: 0,
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.nets.len()
    }

    /// Advances every lane by `steps` backward-Euler seconds through
    /// the shared factorization with inputs held constant — the packed
    /// fast path in its steady operating regime (the counterpart of the
    /// `server_step_1s_constant` measurement).
    ///
    /// # Panics
    ///
    /// Panics when a step fails (the kernel networks are regular).
    pub fn step_batched(&mut self, steps: u64) {
        use leakctl_units::SimDuration;
        let dt = SimDuration::from_secs(1);
        for _ in 0..steps {
            self.solver
                .step_packed(&self.nets, &mut self.packed, dt)
                .expect("batch step succeeds");
        }
    }

    /// As [`RackKernel::step_batched`], but every lane's die powers are
    /// perturbed every step (as the leakage–temperature feedback does in
    /// a live fleet), so per-lane source refresh is part of the
    /// measurement.
    ///
    /// # Panics
    ///
    /// Panics when a step fails (the kernel networks are regular).
    pub fn step_batched_dynamic(&mut self, steps: u64) {
        use leakctl_units::SimDuration;
        let dt = SimDuration::from_secs(1);
        for _ in 0..steps {
            self.wobble_powers();
            self.solver
                .step_packed(&self.nets, &mut self.packed, dt)
                .expect("batch step succeeds");
        }
    }

    /// One tick of the dynamic workload driver: perturbs every lane's
    /// die powers with a cheap per-(step, lane, die) wobble (mask
    /// instead of modulo so the driver loop stays out of the measured
    /// engine's way). Shared by the dynamic benchmark and the
    /// `mutate_only` profiling breakdown so they always drive the same
    /// mutation stream.
    fn wobble_powers(&mut self) {
        use leakctl_units::Watts;
        self.tick += 1;
        for (lane, (net, lane_dies)) in self.nets.iter_mut().zip(&self.dies).enumerate() {
            for (s, &die) in lane_dies.iter().enumerate() {
                let wobble = f64::from(
                    (self.tick as u32)
                        .wrapping_mul(7)
                        .wrapping_add(lane as u32 * 13 + s as u32)
                        & 127,
                );
                net.set_power(die, Watts::new(80.0 + 0.01 * wobble))
                    .expect("power");
            }
        }
    }

    /// Profiling helper: runs the dynamic mutation loop without
    /// stepping (measures driver-side `set_power` cost alone, over the
    /// exact mutation stream `step_batched_dynamic` drives).
    pub fn mutate_only(&mut self, steps: u64) {
        for _ in 0..steps {
            self.wobble_powers();
        }
    }

    /// The hottest node temperature across all lanes (consume the
    /// result so benchmark loops are not optimized away).
    #[must_use]
    pub fn max_temperature(&self) -> leakctl_units::Celsius {
        leakctl_units::Celsius::new(self.packed.max_temperature())
    }
}

/// A rack of identical server-topology lanes stepped through the
/// thread-sharded packed engine
/// ([`ShardedBatchSolver`](leakctl_thermal::ShardedBatchSolver)) — the
/// kernel behind the `repro-rack` thread sweep and the `rack_sharded`
/// criterion group. Results are bit-identical to [`RackKernel`] for
/// any thread count; only wall-clock changes.
#[derive(Debug)]
pub struct ShardedRackKernel {
    nets: Vec<leakctl_thermal::ThermalNetwork>,
    lanes: leakctl_thermal::ShardedLanes,
    solver: leakctl_thermal::ShardedBatchSolver,
}

impl ShardedRackKernel {
    /// Builds a kernel of `servers` lanes sharded across `threads`
    /// workers (same lane construction as [`RackKernel`]).
    ///
    /// # Panics
    ///
    /// Panics when construction fails (static topology, known to
    /// build).
    #[must_use]
    pub fn new(servers: usize, threads: usize) -> Self {
        use leakctl_thermal::{ShardPlan, ShardedBatchSolver, ShardedLanes};
        use leakctl_units::{AirFlow, Celsius, Watts};
        let mut nets = Vec::with_capacity(servers);
        let mut states = Vec::with_capacity(servers);
        for lane in 0..servers {
            let (mut net, lane_dies, flow) = server_like_network(2);
            net.set_flow(flow, AirFlow::from_cfm(250.0)).expect("flow");
            for (s, &die) in lane_dies.iter().enumerate() {
                net.set_power(die, Watts::new(80.0 + lane as f64 * 0.1 + s as f64))
                    .expect("power");
            }
            states.push(net.uniform_state(Celsius::new(24.0)));
            nets.push(net);
        }
        let plan = ShardPlan::new(threads);
        let solver = ShardedBatchSolver::with_plan(&nets[0], plan);
        let lanes = ShardedLanes::pack(&states, &plan);
        Self {
            nets,
            lanes,
            solver,
        }
    }

    /// Number of shards the lane block splits into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.lanes.shard_count()
    }

    /// Advances every lane by `steps` backward-Euler seconds with
    /// inputs frozen: one serial prepare, then every worker runs its
    /// shard's full step sequence with zero cross-thread
    /// synchronization — the measurement behind `parallel_speedup_x`.
    ///
    /// # Panics
    ///
    /// Panics when a step fails (the kernel networks are regular).
    pub fn step_many(&mut self, steps: u64) {
        use leakctl_units::SimDuration;
        self.solver
            .step_many(
                &self.nets,
                &mut self.lanes,
                steps,
                SimDuration::from_secs(1),
            )
            .expect("sharded step succeeds");
    }

    /// The hottest lane temperature (consume the result so benchmark
    /// loops are not optimized away).
    #[must_use]
    pub fn max_temperature(&self) -> leakctl_units::Celsius {
        leakctl_units::Celsius::new(self.lanes.max_temperature())
    }
}

/// A mixed-SKU rack (1/2/3-socket server topologies interleaved)
/// stepped through hash-grouped heterogeneous batching
/// ([`HeteroBatch`](leakctl_thermal::HeteroBatch)) — the kernel behind
/// the `heterogeneous_fleet` criterion group.
#[derive(Debug)]
pub struct HeteroRackKernel {
    nets: Vec<leakctl_thermal::ThermalNetwork>,
    batch: leakctl_thermal::HeteroBatch,
}

impl HeteroRackKernel {
    /// Builds `servers` lanes cycling through 1-, 2- and 3-socket
    /// SKUs.
    ///
    /// # Panics
    ///
    /// Panics when construction fails (static topology, known to
    /// build).
    #[must_use]
    pub fn new(servers: usize) -> Self {
        use leakctl_thermal::{HeteroBatch, ShardPlan};
        use leakctl_units::{AirFlow, Celsius, Watts};
        let mut nets = Vec::with_capacity(servers);
        let mut states = Vec::with_capacity(servers);
        for lane in 0..servers {
            let sockets = 1 + lane % 3;
            let (mut net, lane_dies, flow) = server_like_network(sockets);
            net.set_flow(flow, AirFlow::from_cfm(250.0)).expect("flow");
            for (s, &die) in lane_dies.iter().enumerate() {
                net.set_power(die, Watts::new(70.0 + lane as f64 * 0.1 + s as f64))
                    .expect("power");
            }
            states.push(net.uniform_state(Celsius::new(24.0)));
            nets.push(net);
        }
        let batch = HeteroBatch::pack(&nets, &states, ShardPlan::new(1));
        Self { nets, batch }
    }

    /// Number of structure-hash groups (SKUs).
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.batch.group_count()
    }

    /// Advances every lane by `steps` backward-Euler seconds, each SKU
    /// group batching through its own shared factorization.
    ///
    /// # Panics
    ///
    /// Panics when a step fails (the kernel networks are regular).
    pub fn step(&mut self, steps: u64) {
        use leakctl_units::SimDuration;
        for _ in 0..steps {
            self.batch
                .step(&self.nets, SimDuration::from_secs(1))
                .expect("hetero step succeeds");
        }
    }

    /// The hottest lane temperature (consume the result so benchmark
    /// loops are not optimized away).
    #[must_use]
    pub fn max_temperature(&self) -> leakctl_units::Celsius {
        leakctl_units::Celsius::new(self.batch.max_temperature())
    }
}

/// A full machine room (fleets coupled through the CRAH/plenum/aisle
/// air network) at the canonical operating point — the kernel behind
/// the `repro-room` servers-stepped/sec report and the `room_scale`
/// criterion group. Construction matches [`RoomConfig`]'s defaults
/// (two CRAH units, 18 °C supply, 10 % recirculation) with all fans
/// pinned so throughput runs compare like for like.
///
/// [`RoomConfig`]: leakctl::room::RoomConfig
#[derive(Debug)]
pub struct RoomKernel {
    room: leakctl::room::Room,
}

impl RoomKernel {
    /// Builds a `rows × racks_per_row` room of `servers_per_rack`
    /// default servers, seeded with [`REPRO_SEED`].
    ///
    /// # Panics
    ///
    /// Panics when construction fails (static configuration, known to
    /// build).
    #[must_use]
    pub fn new(rows: usize, racks_per_row: usize, servers_per_rack: usize) -> Self {
        use leakctl::control::ControlAction;
        use leakctl_units::Rpm;
        let mut config = leakctl::room::RoomConfig::new(rows, racks_per_row, servers_per_rack);
        config.seed = REPRO_SEED;
        let mut room = leakctl::room::Room::new(config).expect("room builds");
        room.apply(&ControlAction::hold().with_fan_floor(Rpm::new(3000.0)))
            .expect("fan floor applies");
        Self { room }
    }

    /// Total server count.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.room.servers()
    }

    /// Resets the room's energy accounting (after a warm-up, so
    /// reported energies cover exactly the measured steps).
    pub fn reset_accounting(&mut self) {
        self.room.reset_accounting();
    }

    /// Advances the room by `steps` one-second full-load steps.
    ///
    /// # Panics
    ///
    /// Panics when a step fails (the canonical room is regular).
    pub fn step(&mut self, steps: u64) {
        use leakctl_units::{SimDuration, Utilization};
        for _ in 0..steps {
            self.room
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .expect("room step succeeds");
        }
    }

    /// The simulated room (for metric extraction after a run).
    #[must_use]
    pub fn room(&self) -> &leakctl::room::Room {
        &self.room
    }
}

/// The room *air network alone* (no server fleets) with per-step
/// wobbling rack powers — isolates the sparse air-volume solve the
/// CSR backend carries at room scale. At 64+ racks the network crosses
/// the CSR threshold.
#[derive(Debug)]
pub struct RoomAirKernel {
    air: leakctl_thermal::RoomAirModel,
    tick: u64,
}

impl RoomAirKernel {
    /// Builds a `racks`-rack air model (18 °C supply, 15 %
    /// recirculation, ~12 kW racks).
    ///
    /// # Panics
    ///
    /// Panics when construction fails (static spec, known to build).
    #[must_use]
    pub fn new(racks: usize) -> Self {
        use leakctl_thermal::{RoomAirModel, RoomAirSpec};
        use leakctl_units::{AirFlow, Celsius, Watts};
        let spec = RoomAirSpec::uniform(
            racks,
            Celsius::new(18.0),
            AirFlow::new(3.0 * racks as f64),
            0.15,
        );
        let mut air = RoomAirModel::new(spec).expect("air model builds");
        for r in 0..racks {
            air.set_rack_power(r, Watts::new(12_000.0)).expect("power");
        }
        Self { air, tick: 0 }
    }

    /// `true` when the model runs on the CSR backend.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        self.air.is_sparse()
    }

    /// Advances the air network by `steps` one-second steps, wobbling
    /// every rack's power each step (as live fleets do), so source
    /// refresh is part of the measurement.
    ///
    /// # Panics
    ///
    /// Panics when a step fails (the kernel network is regular).
    pub fn step(&mut self, steps: u64) {
        use leakctl_units::{SimDuration, Watts};
        let dt = SimDuration::from_secs(1);
        for _ in 0..steps {
            self.tick += 1;
            for r in 0..self.air.racks() {
                let wobble = f64::from(
                    (self.tick as u32)
                        .wrapping_mul(7)
                        .wrapping_add(r as u32 * 13)
                        & 127,
                );
                self.air
                    .set_rack_power(r, Watts::new(12_000.0 + 4.0 * wobble))
                    .expect("power");
            }
            self.air.step(dt).expect("air step succeeds");
        }
    }

    /// The hottest air-volume temperature (consume the result so
    /// benchmark loops are not optimized away).
    #[must_use]
    pub fn max_temperature(&self) -> leakctl_units::Celsius {
        self.air.state().max_temperature()
    }
}

/// Machine-readable perf reporting shared by `repro-perf` and
/// `repro-rack`: one JSON schema (`leakctl-perf/v1`), rendered by hand
/// so the vendored no-op serde shim suffices, plus a merge helper so
/// several binaries can contribute to one `BENCH_perf.json` artifact.
pub mod perf {
    use std::fmt::Write as _;

    /// One timed measurement destined for the JSON report.
    #[derive(Debug, Clone)]
    pub struct PerfResult {
        /// Stable measurement name (the differ keys on it).
        pub name: &'static str,
        /// Simulated steps executed.
        pub steps: u64,
        /// Wall-clock seconds.
        pub wall_s: f64,
        /// Extra key/value pairs (pre-rendered JSON values).
        pub extra: Vec<(&'static str, String)>,
    }

    impl PerfResult {
        /// Steps per wall-clock second.
        #[must_use]
        pub fn steps_per_sec(&self) -> f64 {
            self.steps as f64 / self.wall_s.max(1e-12)
        }
    }

    /// Runs a measurement `reps` times and keeps the fastest —
    /// wall-clock minima are far more stable than single shots on a
    /// shared machine.
    pub fn best_of(reps: u32, mut f: impl FnMut() -> PerfResult) -> PerfResult {
        let mut best = f();
        for _ in 1..reps {
            let r = f();
            if r.wall_s < best.wall_s {
                best = r;
            }
        }
        best
    }

    /// Renders a full `leakctl-perf/v1` document.
    #[must_use]
    pub fn render_json(results: &[PerfResult], quick: bool) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"leakctl-perf/v1\",");
        let _ = writeln!(out, "  \"quick\": {quick},");
        out.push_str("  \"results\": [\n");
        for (i, r) in results.iter().enumerate() {
            out.push_str(&render_result(r));
            out.push_str(if i + 1 == results.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    fn render_result(r: &PerfResult) -> String {
        let mut out = String::from("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"sim_steps\": {},", r.steps);
        let _ = writeln!(out, "      \"wall_s\": {:.6},", r.wall_s);
        let _ = writeln!(out, "      \"steps_per_sec\": {:.1},", r.steps_per_sec());
        for (k, v) in &r.extra {
            let _ = writeln!(out, "      \"{k}\": {v},");
        }
        // Trailing-comma cleanup: drop the final ",\n" and re-terminate.
        out.truncate(out.len() - 2);
        out.push('\n');
        out
    }

    /// Merges `results` into an existing `leakctl-perf/v1` document
    /// (e.g. `repro-rack` merging into the report `repro-perf` wrote):
    /// entries whose name matches an incoming result are *replaced*, so
    /// re-running a reporter against a file that already carries its
    /// measurements never duplicates them (duplicates would make the
    /// regression differ compare against the stale first copy). The
    /// document's `"quick"` flag becomes the OR of the existing flag
    /// and `quick`, so a quick-mode contribution is never mislabelled
    /// as full-fidelity. Returns `None` when `existing` is not
    /// recognizably that schema — callers should then write a fresh
    /// document instead.
    #[must_use]
    pub fn merge_into_json(existing: &str, results: &[PerfResult], quick: bool) -> Option<String> {
        if !existing.contains("\"schema\": \"leakctl-perf/v1\"") {
            return None;
        }
        let tail = "  ]\n}\n";
        let body = existing.strip_suffix(tail)?;
        let (header, entries_text) = body.split_at(body.find("  \"results\": [\n")? + 15);
        let header = if quick {
            header.replace("  \"quick\": false,", "  \"quick\": true,")
        } else {
            header.to_owned()
        };
        // Split the existing entries into per-result blocks (the format
        // is our own renderer's: each entry closes with a `    }` or
        // `    },` line).
        let mut kept: Vec<String> = Vec::new();
        let mut current = String::new();
        for line in entries_text.lines() {
            if line == "    }" || line == "    }," {
                kept.push(std::mem::take(&mut current));
            } else {
                current.push_str(line);
                current.push('\n');
            }
        }
        if !current.trim().is_empty() {
            return None; // trailing garbage: not our renderer's output
        }
        let replaced: Vec<String> = results
            .iter()
            .map(|r| format!("\"name\": \"{}\",", r.name))
            .collect();
        kept.retain(|block| !replaced.iter().any(|tag| block.contains(tag.as_str())));
        kept.extend(results.iter().map(render_result));
        let mut out = String::with_capacity(existing.len() + 256);
        out.push_str(&header);
        for (i, block) in kept.iter().enumerate() {
            out.push_str(block);
            out.push_str(if i + 1 == kept.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str(tail);
        Some(out)
    }

    /// Outcome of comparing two perf reports.
    #[derive(Debug)]
    pub struct DiffReport {
        /// One human-readable line per measurement.
        pub lines: Vec<String>,
        /// `true` when some *shared* measurement lost more than the
        /// threshold. Measurements present in only one report — newly
        /// added benches, renamed or dropped ones — are listed but
        /// never fail the gate, so adding a measurement does not
        /// require seeding history.
        pub failed: bool,
    }

    /// Compares `(name, steps_per_sec)` lists by name with an allowed
    /// fractional loss of `threshold` — the policy behind the
    /// `repro-perf-diff` CI gate.
    #[must_use]
    pub fn diff_reports(
        old: &[(String, f64)],
        new: &[(String, f64)],
        threshold: f64,
    ) -> DiffReport {
        let mut lines = Vec::new();
        let mut failed = false;
        for (name, new_sps) in new {
            match old.iter().find(|(n, _)| n == name) {
                Some((_, old_sps)) => {
                    let ratio = new_sps / old_sps.max(1e-12);
                    let verdict = if ratio < 1.0 - threshold {
                        failed = true;
                        "REGRESSION"
                    } else if ratio > 1.0 + threshold {
                        "improved"
                    } else {
                        "ok"
                    };
                    lines.push(format!(
                        "{name:<28} {old_sps:>14.0} -> {new_sps:>14.0} steps/s ({:+6.1}%)  {verdict}",
                        (ratio - 1.0) * 100.0
                    ));
                }
                None => lines.push(format!(
                    "{name:<28} {:>14} -> {new_sps:>14.0} steps/s (new)",
                    "-"
                )),
            }
        }
        for (name, _) in old {
            if !new.iter().any(|(n, _)| n == name) {
                lines.push(format!("{name:<28} dropped from report"));
            }
        }
        DiffReport { lines, failed }
    }

    /// Parses the `(name, steps_per_sec)` pairs out of a
    /// `leakctl-perf/v1` document (line-oriented; the format is our
    /// own renderer's). Used by the `repro-perf-diff` regression gate.
    #[must_use]
    pub fn parse_steps_per_sec(doc: &str) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        let mut current: Option<String> = None;
        for line in doc.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("\"name\": \"") {
                current = rest.strip_suffix("\",").map(str::to_owned);
            } else if let Some(rest) = line.strip_prefix("\"steps_per_sec\": ") {
                let value = rest.trim_end_matches(',');
                if let (Some(name), Ok(v)) = (current.take(), value.parse::<f64>()) {
                    out.push((name, v));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pipeline_runs_end_to_end() {
        let p = quick_pipeline(7);
        assert!(p.data.points.len() >= 12);
        assert!(p.fitted.k1 > 0.0);
        assert!(p.lut.len() >= 4);
    }

    #[test]
    fn stepping_kernel_paths_agree() {
        let mut cached = SteppingKernel::new();
        let mut stateless = SteppingKernel::new();
        cached.step_cached(50);
        stateless.step_stateless(50);
        let a = cached.max_temperature().degrees();
        let b = stateless.max_temperature().degrees();
        assert!((a - b).abs() < 1e-12, "cached {a} vs stateless {b}");
    }

    #[test]
    fn rack_kernel_lanes_share_structure_and_warm_up() {
        let mut kernel = RackKernel::new(4);
        assert_eq!(kernel.servers(), 4);
        kernel.step_batched(120);
        let max = kernel.max_temperature().degrees();
        assert!(
            (30.0..100.0).contains(&max),
            "dies should warm from 24 °C under ~80 W, got {max}"
        );
    }

    #[test]
    fn room_network_is_sparse_scale() {
        let (net, dies, _) = room_network(70);
        assert_eq!(dies.len(), 70);
        assert_eq!(net.state_count(), 3 * 70 + 1);
        // Above the CSR threshold: the auto backend goes sparse.
        let solver = leakctl_thermal::TransientSolver::new(&net);
        assert!(solver.is_sparse());
    }

    #[test]
    fn sharded_kernel_bit_identical_to_packed_kernel() {
        let mut packed = RackKernel::new(36);
        packed.step_batched(200);
        for threads in [1usize, 4] {
            let mut sharded = ShardedRackKernel::new(36, threads);
            sharded.step_many(200);
            assert_eq!(
                sharded.max_temperature().degrees().to_bits(),
                packed.max_temperature().degrees().to_bits(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn hetero_kernel_groups_skus_and_warms_up() {
        let mut kernel = HeteroRackKernel::new(12);
        assert_eq!(kernel.group_count(), 3, "1/2/3-socket SKUs");
        kernel.step(200);
        let max = kernel.max_temperature().degrees();
        assert!((30.0..100.0).contains(&max), "dies should warm, got {max}");
    }

    #[test]
    fn room_kernel_steps_and_accounts() {
        let mut kernel = RoomKernel::new(1, 2, 2);
        assert_eq!(kernel.servers(), 4);
        kernel.step(180);
        assert!(kernel.room().max_die_temperature().degrees() > 30.0);
        assert!(kernel.room().cooling_energy().value() > 0.0);
        assert!(kernel.room().total_energy() > kernel.room().it_energy());
    }

    #[test]
    fn room_air_kernel_goes_sparse_at_scale() {
        let mut large = RoomAirKernel::new(64);
        assert!(large.is_sparse(), "130 air nodes must pick CSR");
        large.step(120);
        assert!(large.max_temperature().degrees() > 18.0);
        assert!(!RoomAirKernel::new(8).is_sparse(), "small rooms stay dense");
    }

    #[test]
    fn perf_diff_tolerates_added_and_dropped_names() {
        use perf::diff_reports;
        let old = vec![("alpha".to_owned(), 1000.0), ("gone".to_owned(), 5.0)];
        let new = vec![
            ("alpha".to_owned(), 900.0),
            ("brand_new_measurement".to_owned(), 123.0),
        ];
        let report = diff_reports(&old, &new, 0.20);
        assert!(!report.failed, "10% loss and a new name must pass");
        assert!(report.lines.iter().any(|l| l.contains("(new)")));
        assert!(report.lines.iter().any(|l| l.contains("dropped")));
        // A real regression on a shared name still fails.
        let bad = vec![("alpha".to_owned(), 500.0)];
        assert!(diff_reports(&old, &bad, 0.20).failed);
    }

    #[test]
    fn perf_report_merge_and_parse_round_trip() {
        use perf::{merge_into_json, parse_steps_per_sec, render_json, PerfResult};
        let a = PerfResult {
            name: "alpha",
            steps: 100,
            wall_s: 0.5,
            extra: vec![("note", "1.0".to_owned())],
        };
        let b = PerfResult {
            name: "beta",
            steps: 300,
            wall_s: 0.1,
            extra: vec![],
        };
        let doc = render_json(std::slice::from_ref(&a), false);
        let merged = merge_into_json(&doc, &[b], false).expect("merge succeeds");
        let parsed = parse_steps_per_sec(&merged);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "alpha");
        assert!((parsed[0].1 - 200.0).abs() < 0.2);
        assert_eq!(parsed[1].0, "beta");
        assert!((parsed[1].1 - 3000.0).abs() < 0.2);
        assert!(merged.contains("\"quick\": false"));
        // Re-merging a same-name result replaces it instead of
        // duplicating (reruns must not grow the file or leave stale
        // first copies for the differ).
        let faster_beta = PerfResult {
            name: "beta",
            steps: 300,
            wall_s: 0.05,
            extra: vec![],
        };
        let remerged = merge_into_json(&merged, &[faster_beta], true).expect("remerge succeeds");
        let reparsed = parse_steps_per_sec(&remerged);
        assert_eq!(reparsed.len(), 2, "no duplicate entries");
        assert_eq!(reparsed[1].0, "beta");
        assert!((reparsed[1].1 - 6000.0).abs() < 0.4);
        // A quick contribution flips the document flag.
        assert!(remerged.contains("\"quick\": true"));
        assert!(merge_into_json("not a perf report", &[a], false).is_none());
    }
}

#[cfg(test)]
mod profiling {
    use super::*;
    use std::time::Instant;

    #[test]
    #[ignore = "manual profiling harness"]
    fn dynamic_vs_constant_breakdown() {
        let mut kernel = RackKernel::new(128);
        kernel.step_batched_dynamic(1);
        let t = Instant::now();
        kernel.step_batched_dynamic(5000);
        println!(
            "dynamic  : {:>9.1} ns/step",
            t.elapsed().as_nanos() as f64 / 5000.0
        );
        let t = Instant::now();
        kernel.step_batched(5000);
        println!(
            "constant : {:>9.1} ns/step",
            t.elapsed().as_nanos() as f64 / 5000.0
        );
        // set_power cost alone: drive the same mutation loop without stepping.
        let mut kernel2 = RackKernel::new(128);
        let t = Instant::now();
        kernel2.mutate_only(5000);
        println!(
            "set_power: {:>9.1} ns/step",
            t.elapsed().as_nanos() as f64 / 5000.0
        );
        assert!(kernel.max_temperature().degrees() > 0.0);
    }
}
