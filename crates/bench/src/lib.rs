//! Shared plumbing for the reproduction binaries (`repro-*`) and the
//! Criterion benches: one place that runs the paper's full pipeline —
//! characterize → fit → build LUT — at paper fidelity or in a reduced
//! "quick" configuration.

#![warn(missing_docs)]

use leakctl::prelude::*;
use leakctl::{
    build_lut_from_characterization, characterize, fit_models, CharacterizationData,
    CharacterizeOptions, FittedModels,
};

/// Everything the evaluation stages need from the identification
/// stages.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The measured characterization grid.
    pub data: CharacterizationData,
    /// The identified Eqn. 2 constants.
    pub fitted: FittedModels,
    /// The generated optimal-fan-speed table.
    pub lut: LookupTable,
}

/// Runs the identification pipeline at full paper fidelity
/// (8 utilizations × 5 fan speeds, 45-minute protocol per point).
///
/// # Panics
///
/// Panics when any stage fails — the calibrated configuration is known
/// to succeed, so a failure indicates a regression worth crashing on in
/// a reproduction binary.
#[must_use]
pub fn paper_pipeline(seed: u64) -> Pipeline {
    pipeline(&CharacterizeOptions::paper(), seed)
}

/// Runs the identification pipeline on the reduced grid (for smoke
/// tests and ablations).
///
/// # Panics
///
/// Panics when any stage fails.
#[must_use]
pub fn quick_pipeline(seed: u64) -> Pipeline {
    pipeline(&CharacterizeOptions::quick(), seed)
}

fn pipeline(options: &CharacterizeOptions, seed: u64) -> Pipeline {
    let data = characterize(options, seed).expect("characterization succeeds");
    let fitted = fit_models(&data).expect("fitting succeeds");
    let lut = build_lut_from_characterization(&data, &fitted).expect("LUT build succeeds");
    Pipeline { data, fitted, lut }
}

/// The seed used by every reproduction binary, so their outputs agree
/// with each other and with EXPERIMENTS.md.
pub const REPRO_SEED: u64 = 42;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pipeline_runs_end_to_end() {
        let p = quick_pipeline(7);
        assert!(p.data.points.len() >= 12);
        assert!(p.fitted.k1 > 0.0);
        assert!(p.lut.len() >= 4);
    }
}
