//! Shared plumbing for the reproduction binaries (`repro-*`) and the
//! Criterion benches: one place that runs the paper's full pipeline —
//! characterize → fit → build LUT — at paper fidelity or in a reduced
//! "quick" configuration.

#![warn(missing_docs)]

use leakctl::prelude::*;
use leakctl::{
    build_lut_from_characterization, characterize, fit_models, CharacterizationData,
    CharacterizeOptions, FittedModels,
};

/// Everything the evaluation stages need from the identification
/// stages.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The measured characterization grid.
    pub data: CharacterizationData,
    /// The identified Eqn. 2 constants.
    pub fitted: FittedModels,
    /// The generated optimal-fan-speed table.
    pub lut: LookupTable,
}

/// Runs the identification pipeline at full paper fidelity
/// (8 utilizations × 5 fan speeds, 45-minute protocol per point).
///
/// # Panics
///
/// Panics when any stage fails — the calibrated configuration is known
/// to succeed, so a failure indicates a regression worth crashing on in
/// a reproduction binary.
#[must_use]
pub fn paper_pipeline(seed: u64) -> Pipeline {
    pipeline(&CharacterizeOptions::paper(), seed)
}

/// Runs the identification pipeline on the reduced grid (for smoke
/// tests and ablations).
///
/// # Panics
///
/// Panics when any stage fails.
#[must_use]
pub fn quick_pipeline(seed: u64) -> Pipeline {
    pipeline(&CharacterizeOptions::quick(), seed)
}

fn pipeline(options: &CharacterizeOptions, seed: u64) -> Pipeline {
    let data = characterize(options, seed).expect("characterization succeeds");
    let fitted = fit_models(&data).expect("fitting succeeds");
    let lut = build_lut_from_characterization(&data, &fitted).expect("LUT build succeeds");
    Pipeline { data, fitted, lut }
}

/// The seed used by every reproduction binary, so their outputs agree
/// with each other and with EXPERIMENTS.md.
pub const REPRO_SEED: u64 = 42;

/// A server-shaped thermal network (ambient boundary, shared DIMM air
/// volume, two DIMM banks, three die→sink→air socket chains on one
/// chassis flow channel) for stepping-kernel benchmarks that want the
/// real topology without dragging in the whole platform.
///
/// Returns the network, the first die node and the chassis flow
/// channel.
///
/// # Panics
///
/// Panics when construction fails — the topology is static and known
/// to build.
#[must_use]
pub fn bench_network() -> (
    leakctl_thermal::ThermalNetwork,
    leakctl_thermal::NodeId,
    leakctl_thermal::FlowChannelId,
) {
    use leakctl_thermal::{ConvectionModel, Coupling, ThermalNetworkBuilder};
    use leakctl_units::{AirFlow, Celsius, ThermalCapacitance, ThermalConductance, Watts};

    let mut b = ThermalNetworkBuilder::new();
    let ambient = b.add_boundary("ambient", Celsius::new(24.0));
    let flow = b.add_flow_channel("chassis");
    let sink_conv =
        ConvectionModel::turbulent(ThermalConductance::new(3.4), AirFlow::from_cfm(300.0));
    let dimm_conv =
        ConvectionModel::turbulent(ThermalConductance::new(12.0), AirFlow::from_cfm(300.0));

    let air_dimm = b.add_node("air_dimm", ThermalCapacitance::new(15.0));
    b.connect_directed(
        ambient,
        air_dimm,
        Coupling::Advective {
            channel: flow,
            fraction: 1.0,
        },
    )
    .expect("static edge");
    b.connect(
        air_dimm,
        ambient,
        Coupling::Conductance(ThermalConductance::new(0.5)),
    )
    .expect("static edge");
    for bank in 0..2 {
        let node = b.add_node(&format!("dimm_bank{bank}"), ThermalCapacitance::new(900.0));
        b.connect(
            node,
            air_dimm,
            Coupling::Convective {
                channel: flow,
                model: dimm_conv,
            },
        )
        .expect("static edge");
    }
    let sockets = 3;
    let mut first_die = None;
    for s in 0..sockets {
        let die = b.add_node(&format!("cpu{s}_die"), ThermalCapacitance::new(80.0));
        let sink = b.add_node(&format!("cpu{s}_sink"), ThermalCapacitance::new(400.0));
        let air = b.add_node(&format!("cpu{s}_air"), ThermalCapacitance::new(15.0));
        b.connect(
            die,
            sink,
            Coupling::Conductance(ThermalConductance::new(10.0)),
        )
        .expect("static edge");
        b.connect(
            sink,
            air,
            Coupling::Convective {
                channel: flow,
                model: sink_conv,
            },
        )
        .expect("static edge");
        b.connect_directed(
            air_dimm,
            air,
            Coupling::Advective {
                channel: flow,
                fraction: 1.0 / sockets as f64,
            },
        )
        .expect("static edge");
        b.connect(
            air,
            ambient,
            Coupling::Conductance(ThermalConductance::new(0.5)),
        )
        .expect("static edge");
        first_die.get_or_insert(die);
    }
    let mut net = b.build().expect("static network builds");
    let die = first_die.expect("at least one socket");
    net.set_power(die, Watts::new(90.0))
        .expect("die accepts power");
    (net, die, flow)
}

/// A ready-to-step instance of [`bench_network`] at the canonical
/// operating point (250 CFM, 24 °C start, backward Euler, 1 s steps).
///
/// Every stepping-kernel measurement — the criterion `steps_per_sec`
/// group, its one-shot summary line, and the `repro-perf` JSON report —
/// drives this one configuration, so they cannot silently drift apart.
#[derive(Debug, Clone)]
pub struct SteppingKernel {
    net: leakctl_thermal::ThermalNetwork,
    solver: leakctl_thermal::TransientSolver,
    state: leakctl_thermal::ThermalState,
}

impl SteppingKernel {
    /// Builds the kernel at the canonical operating point.
    ///
    /// # Panics
    ///
    /// Panics when construction fails (static topology, known to
    /// build).
    #[must_use]
    pub fn new() -> Self {
        use leakctl_units::{AirFlow, Celsius};
        let (mut net, _die, ch) = bench_network();
        net.set_flow(ch, AirFlow::from_cfm(250.0))
            .expect("flow set");
        let solver = leakctl_thermal::TransientSolver::new(&net);
        let state = net.uniform_state(Celsius::new(24.0));
        Self { net, solver, state }
    }

    /// Advances `steps` seconds through the persistent cached solver.
    ///
    /// # Panics
    ///
    /// Panics when a step fails (the kernel network is regular).
    pub fn step_cached(&mut self, steps: u64) {
        use leakctl_thermal::Integrator;
        use leakctl_units::SimDuration;
        for _ in 0..steps {
            self.solver
                .step(
                    &self.net,
                    &mut self.state,
                    SimDuration::from_secs(1),
                    Integrator::BackwardEuler,
                )
                .expect("step succeeds");
        }
    }

    /// Advances `steps` seconds through the stateless per-call-assembly
    /// wrapper.
    ///
    /// # Panics
    ///
    /// Panics when a step fails (the kernel network is regular).
    pub fn step_stateless(&mut self, steps: u64) {
        use leakctl_thermal::Integrator;
        use leakctl_units::SimDuration;
        for _ in 0..steps {
            self.net
                .step(
                    &mut self.state,
                    SimDuration::from_secs(1),
                    Integrator::BackwardEuler,
                )
                .expect("step succeeds");
        }
    }

    /// The hottest node temperature of the evolving state (consume the
    /// result so benchmark loops are not optimized away).
    #[must_use]
    pub fn max_temperature(&self) -> leakctl_units::Celsius {
        self.state.max_temperature()
    }
}

impl Default for SteppingKernel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pipeline_runs_end_to_end() {
        let p = quick_pipeline(7);
        assert!(p.data.points.len() >= 12);
        assert!(p.fitted.k1 > 0.0);
        assert!(p.lut.len() >= 4);
    }

    #[test]
    fn stepping_kernel_paths_agree() {
        let mut cached = SteppingKernel::new();
        let mut stateless = SteppingKernel::new();
        cached.step_cached(50);
        stateless.step_stateless(50);
        let a = cached.max_temperature().degrees();
        let b = stateless.max_temperature().degrees();
        assert!((a - b).abs() < 1e-12, "cached {a} vs stateless {b}");
    }
}
