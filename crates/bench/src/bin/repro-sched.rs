//! Thermal-aware scheduling figure: total (IT + cooling) energy and
//! peak die temperature of the thermal-greedy and local-search
//! placement policies against the round-robin baseline on the
//! 3072-server repro room (8 × 8 racks × 48 servers), merged into the
//! `BENCH_perf.json` perf artifact alongside the other repro reporters.
//!
//! All three policies consume the identical seeded job stream under
//! the identical LUT cooling controller; only placement differs. The
//! process exits nonzero unless thermal-greedy *and* local-search
//! strictly beat round-robin on total energy at equal-or-lower peak
//! die temperature — the CI acceptance gate for the scheduler layer —
//! and the `sched_servers_per_sec` throughput of the scheduled loop
//! rides the existing `repro-perf-diff` regression gate.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-sched [-- --quick] [--out PATH]
//! ```

use leakctl_bench::perf::{merge_into_json, render_json};
use leakctl_bench::sched::{run_sched_comparison, SchedScenario};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_owned());

    let scenario = if quick {
        SchedScenario::quick()
    } else {
        SchedScenario::full()
    };
    println!(
        "== leakctl scheduling figure ({}x{} racks, {} servers, {:.2} jobs/s) ==",
        scenario.rows,
        scenario.racks_per_row,
        scenario.servers(),
        scenario.arrival_rate
    );

    let comparison = run_sched_comparison(&scenario);
    for run in [
        &comparison.round_robin,
        &comparison.greedy,
        &comparison.local_search,
    ] {
        println!(
            "  {:<16} {:>10.4} kWh  (IT {:.4} + cooling {:.4})  max die {:>6.2} C  \
             placed {:>6}  done {:>6}  queue<= {:>4}{}",
            run.name,
            run.total_kwh,
            run.it_kwh,
            run.cooling_kwh,
            run.max_die_c,
            run.placed,
            run.completed,
            run.peak_pending,
            if run.feasible { "" } else { "  INFEASIBLE" }
        );
    }
    println!(
        "  savings vs round-robin: greedy {:+.3}%  local-search {:+.3}%  \
         peak-die delta {:+.3} C",
        comparison.savings_pct(&comparison.greedy),
        comparison.savings_pct(&comparison.local_search),
        comparison.peak_die_delta()
    );

    let result = comparison.to_perf_result();
    println!(
        "{:<28} {:>12} server-steps in {:>8.3} s -> {:>12.0} servers-stepped/s",
        result.name,
        result.steps,
        result.wall_s,
        result.steps_per_sec()
    );

    let results = vec![result];
    let json = match std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|existing| merge_into_json(&existing, &results, quick))
    {
        Some(merged) => merged,
        None => render_json(&results, quick),
    };
    std::fs::write(&out_path, &json).expect("perf JSON written");
    println!("wrote {out_path}");

    if !comparison.strictly_wins() {
        eprintln!(
            "FAIL: thermal-greedy and local-search must strictly beat round-robin \
             on total energy at equal-or-lower peak die temperature"
        );
        std::process::exit(1);
    }
    println!(
        "PASS: thermal-aware placement strictly beats round-robin on energy \
         at equal-or-lower peak die temperature"
    );
}
