//! Set-point optimization figure: total (IT + cooling) energy of the
//! LUT and receding-horizon MPC supply controllers against a grid of
//! fixed-supply baselines, swept over hot-aisle recirculation
//! fractions β on the 256-server repro room, merged into the
//! `BENCH_perf.json` perf artifact alongside `repro-perf`, `repro-rack`
//! and `repro-room`.
//!
//! For each β every fixed supply on the grid runs the same square-wave
//! load schedule; the cheapest one whose hottest die never crosses the
//! 85 °C cap is the baseline the adaptive controllers must strictly
//! beat. The process exits nonzero unless LUT *and* MPC win at every β
//! — the CI acceptance gate for the paper's room-scale claim — and the
//! `setpoint_ctrl_servers_per_sec` throughput of the MPC-controlled
//! loop rides the existing `repro-perf-diff` regression gate.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-setpoint [-- --quick] [--out PATH]
//! ```

use leakctl_bench::perf::{merge_into_json, render_json};
use leakctl_bench::setpoint::{run_setpoint_sweep, SetPointScenario};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_owned());

    let scenario = if quick {
        SetPointScenario::quick()
    } else {
        SetPointScenario::full()
    };
    println!(
        "== leakctl set-point figure ({}x{} racks, {} servers, {} betas) ==",
        scenario.rows,
        scenario.racks_per_row,
        scenario.servers(),
        scenario.betas.len()
    );

    let sweep = run_setpoint_sweep(&scenario);
    for b in &sweep.betas {
        println!("beta = {:.2}", b.beta);
        for run in &b.fixed {
            println!(
                "  {:<10} {:>10.4} kWh  (IT {:.4} + cooling {:.4})  max die {:>6.2} C{}",
                run.name,
                run.total_kwh,
                run.it_kwh,
                run.cooling_kwh,
                run.max_die_c,
                if run.feasible { "" } else { "  INFEASIBLE" }
            );
        }
        let best = b.best_fixed();
        println!(
            "  best fixed: {}",
            best.map_or_else(|| "none feasible".to_owned(), |r| r.name.clone())
        );
        for run in [&b.lut, &b.mpc] {
            println!(
                "  {:<10} {:>10.4} kWh  (IT {:.4} + cooling {:.4})  max die {:>6.2} C  savings {}%{}",
                run.name,
                run.total_kwh,
                run.it_kwh,
                run.cooling_kwh,
                run.max_die_c,
                b.savings_pct(run)
                    .map_or_else(|| "n/a".to_owned(), |s| format!("{s:+.2}")),
                if run.feasible { "" } else { "  INFEASIBLE" }
            );
        }
    }

    let result = sweep.to_perf_result();
    println!(
        "{:<28} {:>12} server-steps in {:>8.3} s -> {:>12.0} servers-stepped/s",
        result.name,
        result.steps,
        result.wall_s,
        result.steps_per_sec()
    );
    println!(
        "setpoint_savings_pct = {}",
        sweep
            .min_savings_pct()
            .map_or_else(|| "n/a".to_owned(), |s| format!("{s:.4}"))
    );

    let results = vec![result];
    let json = match std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|existing| merge_into_json(&existing, &results, quick))
    {
        Some(merged) => merged,
        None => render_json(&results, quick),
    };
    std::fs::write(&out_path, &json).expect("perf JSON written");
    println!("wrote {out_path}");

    if !sweep.strictly_wins() {
        eprintln!(
            "FAIL: adaptive set-point control must strictly beat the best feasible \
             fixed supply at every beta"
        );
        std::process::exit(1);
    }
    println!("PASS: LUT and MPC strictly beat the best fixed supply at every beta");
}
