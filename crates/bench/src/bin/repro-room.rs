//! Room-scale throughput report: a full machine room — per-rack
//! server fleets coupled through the CRAH/plenum/aisle air-volume
//! network — stepped end to end, reporting servers-stepped/sec and the
//! room's energy split, merged into the `BENCH_perf.json` perf
//! artifact alongside `repro-perf` and `repro-rack`.
//!
//! The room is the default 2 rows × 4 racks × 32 servers floor
//! (8 racks, 256 servers — the acceptance floor for room-scale CI
//! coverage): two CRAH units, 18 °C supply, distance-decayed tile
//! flows, 10 % hot-aisle recirculation. One measurement drives the
//! regression gate:
//!
//! - `room_servers_per_sec` — full `Room::step` throughput in
//!   servers-stepped/sec (air phase + all fleets, racks sharded across
//!   the machine's workers), with the room's energy balance as extras:
//!   `room_energy_kwh` (IT + CRAH cooling work, accounting reset after
//!   warm-up so the energies cover exactly the timed steps),
//!   `room_it_kwh`, `room_cooling_kwh`, the hottest die, and the
//!   cold-aisle spread the tile-flow split produces.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-room [-- --quick] [--out PATH]
//! ```

use std::time::Instant;

use leakctl_bench::perf::{best_of, merge_into_json, render_json, PerfResult};
use leakctl_bench::RoomKernel;

/// Default floor: 2 rows × 4 racks × 32 servers = 256 servers.
const ROWS: usize = 2;
const RACKS_PER_ROW: usize = 4;
const SERVERS_PER_RACK: usize = 32;

/// One timed room run: warm-up, then `steps` measured seconds.
fn bench_room(steps: u64) -> PerfResult {
    let mut kernel = RoomKernel::new(ROWS, RACKS_PER_ROW, SERVERS_PER_RACK);
    let servers = kernel.servers() as u64;
    // Warm up: fans settle, the air network develops its gradients,
    // every hash group goes packed-resident. Accounting restarts so
    // the reported energies cover exactly the timed steps.
    kernel.step(120);
    kernel.reset_accounting();
    let start = Instant::now();
    kernel.step(steps);
    let wall_s = start.elapsed().as_secs_f64();

    let room = kernel.room();
    let racks = room.racks();
    let (mut coldest, mut hottest) = (f64::INFINITY, f64::NEG_INFINITY);
    for r in 0..racks {
        let t = room.cold_aisle_temperature(r).degrees();
        coldest = coldest.min(t);
        hottest = hottest.max(t);
    }
    PerfResult {
        name: "room_servers_per_sec",
        steps: steps * servers,
        wall_s,
        extra: vec![
            ("racks", format!("{racks}")),
            ("servers", format!("{}", room.servers())),
            (
                "room_energy_kwh",
                format!("{:.9}", room.total_energy().as_kwh().value()),
            ),
            (
                "room_it_kwh",
                format!("{:.9}", room.it_energy().as_kwh().value()),
            ),
            (
                "room_cooling_kwh",
                format!("{:.9}", room.cooling_energy().as_kwh().value()),
            ),
            (
                "max_die_temp_c",
                format!("{:.6}", room.max_die_temperature().degrees()),
            ),
            ("cold_aisle_min_c", format!("{coldest:.6}")),
            ("cold_aisle_max_c", format!("{hottest:.6}")),
            (
                "return_temp_c",
                format!("{:.6}", room.return_temperature().degrees()),
            ),
            ("it_power_w", format!("{:.3}", room.total_power().value())),
            (
                "crah_heat_removed_w",
                format!("{:.3}", room.air().crah_heat_removed().value()),
            ),
        ],
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_owned());

    let servers = ROWS * RACKS_PER_ROW * SERVERS_PER_RACK;
    println!("== leakctl room-scale report ({ROWS}x{RACKS_PER_ROW} racks, {servers} servers) ==");
    let steps = if quick { 120 } else { 900 };
    let reps = if quick { 2 } else { 3 };
    let result = best_of(reps, || bench_room(steps));

    println!(
        "{:<24} {:>10} server-steps in {:>8.3} s -> {:>12.0} servers-stepped/s",
        result.name,
        result.steps,
        result.wall_s,
        result.steps_per_sec()
    );
    for (k, v) in &result.extra {
        println!("    {k} = {v}");
    }

    let results = vec![result];
    let json = match std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|existing| merge_into_json(&existing, &results, quick))
    {
        Some(merged) => merged,
        None => render_json(&results, quick),
    };
    std::fs::write(&out_path, &json).expect("perf JSON written");
    println!("wrote {out_path}");
}
