//! Reproduces **Fig. 2(a)**: leakage power and fan power versus average
//! CPU temperature at 100 % utilization, with the Eqn. 2 model fit —
//! the convex `P_leak + P_fan` curve whose minimum defines the optimal
//! fan speed.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-fig2a
//! ```

use leakctl::report::{ascii_chart, ascii_table, ChartSeries};
use leakctl::{fig2a, paper};
use leakctl_bench::{paper_pipeline, REPRO_SEED};

fn main() {
    println!("== Fig. 2(a) reproduction ==");
    println!("running the characterization sweep + model fitting...");
    let pipeline = paper_pipeline(REPRO_SEED);
    let fitted = &pipeline.fitted;
    println!(
        "fit: P_sys = {:.1} + {:.4}*U + {:.4}*exp({:.5}*T)",
        fitted.base, fitted.k1, fitted.k2, fitted.k3
    );
    println!(
        "     rmse {:.3} W (paper {:.3} W), accuracy {:.1}% (paper {:.0}%), R^2 {:.4}",
        fitted.goodness.rmse,
        paper::FIT_RMSE_W,
        fitted.goodness.accuracy_percent,
        paper::FIT_ACCURACY_PCT,
        fitted.goodness.r_squared
    );
    println!(
        "constants vs paper: k1 {:.4}/{:.4}  k2 {:.4}/{:.4}  k3 {:.5}/{:.5}",
        fitted.k1,
        paper::K1,
        fitted.k2,
        paper::K2,
        fitted.k3,
        paper::K3
    );

    let fig = fig2a(&pipeline.data, fitted).expect("fig2a builds");
    let points = &fig.groups[0].1;

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.rpm),
                format!("{:.1}", p.temp_c),
                format!("{:.1}", p.fan_w),
                format!("{:.1}", p.leak_measured_w),
                format!("{:.1}", p.leak_fitted_w),
                format!("{:.1}", p.leak_true_w),
                format!("{:.1}", p.fan_plus_leak()),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &[
                "RPM",
                "T avg (C)",
                "Fan (W)",
                "Leak meas (W)",
                "Leak fit (W)",
                "Leak true (W)",
                "Fan+Leak (W)",
            ],
            &rows,
        )
    );

    let fan = ChartSeries {
        label: "F fan".into(),
        points: points.iter().map(|p| (p.temp_c, p.fan_w)).collect(),
    };
    let leak = ChartSeries {
        label: "L leak (fitted)".into(),
        points: points.iter().map(|p| (p.temp_c, p.leak_fitted_w)).collect(),
    };
    let sum = ChartSeries {
        label: "S sum".into(),
        points: points
            .iter()
            .map(|p| (p.temp_c, p.fan_plus_leak()))
            .collect(),
    };
    println!("{}", ascii_chart(&[fan, leak, sum], 80, 18));

    let opt = fig.optimum_of("100%").expect("optimum exists");
    println!(
        "optimum: {:.0} RPM at {:.1} C, fan+leak = {:.1} W",
        opt.rpm,
        opt.temp_c,
        opt.fan_plus_leak()
    );
    println!(
        "paper:   {:.0} RPM at ~{:.0} C\n",
        paper::OPTIMUM_RPM,
        paper::OPTIMUM_TEMP_C
    );
    println!("CSV:\n{}", fig.to_csv());
}
