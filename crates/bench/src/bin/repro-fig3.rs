//! Reproduces **Fig. 3**: runtime temperature traces of the three
//! controllers over Test-3 — default stays cold and flat, bang-bang
//! oscillates against its thresholds, the LUT holds a low steady band.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-fig3
//! ```

use leakctl::report::{ascii_chart, ChartSeries};
use leakctl::{fig3, RunOptions};
use leakctl_bench::{paper_pipeline, REPRO_SEED};

fn main() {
    println!("== Fig. 3 reproduction ==");
    println!("building the LUT (characterize + fit)...");
    let pipeline = paper_pipeline(REPRO_SEED);
    println!("running Test-3 under the three controllers...");
    let fig = fig3(&RunOptions::default(), pipeline.lut, REPRO_SEED).expect("fig3 runs");

    for (temp, rpm) in fig.temperature.iter().zip(&fig.fan_speed) {
        println!("--- {} ---", temp.label);
        let t_series = ChartSeries {
            label: format!("{} temp", temp.label),
            points: temp.points.clone(),
        };
        println!("{}", ascii_chart(&[t_series], 90, 14));
        let window: Vec<f64> = temp
            .points
            .iter()
            .filter(|(m, _)| *m >= 5.0 && *m <= 85.0)
            .map(|(_, t)| *t)
            .collect();
        let mean = window.iter().sum::<f64>() / window.len().max(1) as f64;
        let hi = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lo = window.iter().copied().fold(f64::INFINITY, f64::min);
        let rpm_mean = rpm
            .points
            .iter()
            .filter(|(m, _)| *m >= 5.0 && *m <= 85.0)
            .map(|(_, r)| *r)
            .sum::<f64>()
            / window.len().max(1) as f64;
        println!(
            "    temp mean {mean:.1} C, range [{lo:.1}, {hi:.1}] C, mean fan {rpm_mean:.0} RPM\n"
        );
    }
    println!(
        "paper: default ~55-60 C flat at 3300 RPM; bang-bang oscillates\n\
         in the 55-77 C range; LUT low and steady, leakage kept small.\n"
    );
    println!("CSV:\n{}", fig.to_csv());
}
