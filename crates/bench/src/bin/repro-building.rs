//! Building-scale resilience figure: a four-room building sharing one
//! finite chilled-water plant rides a chiller failure, a heat-wave
//! economizer lockout and a correlated load surge under supervised
//! per-room LUT and MPC set-point controllers, merged into the
//! `BENCH_perf.json` perf artifact alongside the other `repro-*`
//! reporters.
//!
//! The process exits nonzero unless (a) both supervised controllers
//! *contain* every scripted building fault — the hottest die across the
//! building exceeds the 85 °C cap for no longer than the documented
//! transient budget, ends the run back under it, and no invariant
//! monitor (NaN, energy conservation) trips — and (b) a mid-fault
//! building checkpoint restored onto thread plans {1, 2, 8} finishes
//! bit-identically to the uninterrupted run. The
//! `building_ctrl_servers_per_sec` throughput of the MPC rides joins
//! the existing `repro-perf-diff` regression gate.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-building [-- --quick] [--out PATH]
//! ```

use leakctl_bench::building::{run_building_sweep, BuildingSpec};
use leakctl_bench::perf::{merge_into_json, render_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_owned());

    let spec = if quick {
        BuildingSpec::quick()
    } else {
        BuildingSpec::full()
    };
    println!(
        "== leakctl building resilience ({} rooms x {} servers, transient budget {:.0} s) ==",
        spec.rooms,
        spec.base.servers(),
        spec.transient_budget.as_secs_f64()
    );

    let sweep = run_building_sweep(&spec);
    let mut scenario = "";
    for run in &sweep.runs {
        if run.scenario != scenario {
            println!("scenario: {}", run.scenario);
            scenario = &run.scenario;
        }
        println!(
            "  {:<4} peak die {:>6.2} C  final {:>6.2} C  over-cap {:>6.1} s  \
             sheds {:>2}  escalations {:>2}  shed time {:>6.0} s  trips {:>2}  {}",
            run.controller,
            run.outcome.stats.peak_die.degrees(),
            run.outcome.final_max_die.degrees(),
            run.outcome.stats.cap_violation_time.as_secs_f64(),
            run.outcome.sheds,
            run.outcome.escalations,
            run.outcome.shed_time.as_secs_f64(),
            run.outcome.trips.invariant(),
            if run.contained {
                "contained"
            } else {
                "NOT CONTAINED"
            }
        );
    }
    println!(
        "mid-fault checkpoint/restore bit-identical across plans {{1, 2, 8}}: {}",
        sweep.checkpoint_bit_identical
    );

    let result = sweep.to_perf_result();
    println!(
        "{:<30} {:>12} server-steps in {:>8.3} s -> {:>12.0} servers-stepped/s",
        result.name,
        result.steps,
        result.wall_s,
        result.steps_per_sec()
    );

    let results = vec![result];
    let json = match std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|existing| merge_into_json(&existing, &results, quick))
    {
        Some(merged) => merged,
        None => render_json(&results, quick),
    };
    std::fs::write(&out_path, &json).expect("perf JSON written");
    println!("wrote {out_path}");

    if !sweep.all_contained() {
        eprintln!(
            "FAIL: the supervised set-point controllers must contain every scripted building \
             fault (cap excursions bounded by the transient budget, end state under the cap, \
             zero invariant-monitor trips)"
        );
        std::process::exit(1);
    }
    if !sweep.checkpoint_bit_identical {
        eprintln!(
            "FAIL: a mid-fault building checkpoint must restore to a bit-identical trajectory \
             on every thread plan"
        );
        std::process::exit(1);
    }
    println!(
        "PASS: supervised LUT and MPC contained every building fault; \
         checkpoint/restore is bit-identical across thread plans"
    );
}
