//! Perf regression gate: compares a fresh `BENCH_perf.json` against the
//! previous CI artifact and fails (exit 1) when any shared measurement
//! lost more than 20 % steps/sec.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-perf-diff -- OLD.json NEW.json [--threshold 0.20]
//! ```
//!
//! Measurements are matched by name; entries present in only one report
//! (new benches, renamed ones) are listed but never fail the gate, so
//! adding a measurement does not require seeding history. Wall-clock
//! noise on shared CI runners is why the default gate is as loose as
//! 20 % — the report keeps best-of-N minima precisely so this stays
//! meaningful.

use std::process::ExitCode;

use leakctl_bench::perf::{diff_reports, parse_steps_per_sec};

/// Allowed fractional steps/sec loss before the gate fails.
const DEFAULT_THRESHOLD: f64 = 0.20;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let (Some(old_path), Some(new_path)) = (paths.first(), paths.get(1)) else {
        eprintln!("usage: repro-perf-diff OLD.json NEW.json [--threshold 0.20]");
        return ExitCode::from(2);
    };
    let threshold = args
        .iter()
        .position(|a| a == "--threshold")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_THRESHOLD);

    let read = |path: &str| -> Option<Vec<(String, f64)>> {
        let doc = std::fs::read_to_string(path).ok()?;
        let parsed = parse_steps_per_sec(&doc);
        if parsed.is_empty() {
            None
        } else {
            Some(parsed)
        }
    };
    let Some(old) = read(old_path) else {
        eprintln!("repro-perf-diff: cannot parse {old_path}; skipping gate (no history)");
        return ExitCode::SUCCESS;
    };
    let Some(new) = read(new_path) else {
        eprintln!("repro-perf-diff: cannot parse {new_path}");
        return ExitCode::FAILURE;
    };

    println!(
        "== perf regression gate (>{:.0}% loss fails) ==",
        threshold * 100.0
    );
    // The comparison policy lives in `leakctl_bench::perf::diff_reports`
    // (unit-tested there): shared names gate on the threshold, names
    // present in only one report — newly added or dropped measurements
    // — are listed but never fail.
    let report = diff_reports(&old, &new, threshold);
    for line in &report.lines {
        println!("{line}");
    }
    if report.failed {
        eprintln!(
            "perf gate FAILED: steps/sec regression beyond {:.0}%",
            threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("perf gate passed");
        ExitCode::SUCCESS
    }
}
