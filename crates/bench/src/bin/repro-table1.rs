//! Reproduces **Table I**: energy, net savings, peak power, max
//! temperature, fan changes and average RPM for the three controllers
//! over the four 80-minute test workloads.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-table1
//! ```

use leakctl::report::ascii_table;
use leakctl::{generate_table1, paper, Table1Options};
use leakctl_bench::{paper_pipeline, REPRO_SEED};

fn main() {
    println!("== Table I reproduction ==");
    println!("running characterization + fitting + LUT generation...");
    let pipeline = paper_pipeline(REPRO_SEED);
    println!(
        "fitted: k1 = {:.4} W/% (paper {:.4}), k2 = {:.4} (paper {:.4}), k3 = {:.5} (paper {:.5})",
        pipeline.fitted.k1,
        paper::K1,
        pipeline.fitted.k2,
        paper::K2,
        pipeline.fitted.k3,
        paper::K3,
    );
    println!("LUT:");
    for (u, rpm) in pipeline.lut.entries() {
        println!("  <= {:>5.1}% -> {:>4.0} RPM", u.as_percent(), rpm.value());
    }

    println!("\nrunning 4 tests x 3 controllers (80 min each)...");
    let options = Table1Options {
        run: leakctl::RunOptions::default(),
        seed: REPRO_SEED,
        lut: pipeline.lut,
    };
    let table = generate_table1(&options).expect("table generation succeeds");
    println!("\n-- measured (this reproduction) --");
    println!("{}", table.render());

    println!("-- paper (reference) --");
    let rows: Vec<Vec<String>> = paper::TABLE1
        .iter()
        .map(|r| {
            vec![
                format!("Test-{}", r.test),
                r.scheme.to_owned(),
                format!("{:.4}", r.energy_kwh),
                r.net_savings_pct
                    .map_or_else(|| "--".to_owned(), |s| format!("{s:.1}%")),
                format!("{:.0}", r.peak_power_w),
                format!("{:.0}", r.max_temp_c),
                format!("{}", r.fan_changes),
                format!("{:.0}", r.avg_rpm),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &[
                "Test",
                "Scheme",
                "Energy (kWh)",
                "Net Savings",
                "Peak Pwr (W)",
                "Max Temp (C)",
                "#fan change",
                "Avg RPM",
            ],
            &rows,
        )
    );

    // Shape summary.
    println!("-- shape check --");
    for test in ["Test-1", "Test-2", "Test-3", "Test-4"] {
        let d = table.row(test, "Default").expect("row exists");
        let b = table.row(test, "Bang").expect("row exists");
        let l = table.row(test, "LUT").expect("row exists");
        println!(
            "{test}: LUT {} Bang, Bang {} Default | LUT savings {:.1}% | peak cut {:.0} W | LUT max {:.0} C",
            if l.energy <= b.energy { "<=" } else { "> " },
            if b.energy <= d.energy { "<=" } else { "> " },
            l.net_savings_pct.unwrap_or(0.0),
            d.peak_power.value() - l.peak_power.value(),
            l.max_temp_c,
        );
    }
    println!("\nCSV:\n{}", table.to_csv());
}
