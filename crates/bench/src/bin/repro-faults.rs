//! Fault-ride-through figure: scripted CRAH failures, fan degradation
//! and load spikes driven through the closed control loop on the
//! 256-server repro room, under a fixed-supply baseline and the LUT and
//! MPC set-point controllers, merged into the `BENCH_perf.json` perf
//! artifact alongside the other `repro-*` reporters.
//!
//! The process exits nonzero unless (a) both adaptive controllers
//! *contain* every scripted fault — the hottest die exceeds the 85 °C
//! cap for no longer than the documented transient budget and ends the
//! run back under it (the fixed baseline is reported but exempt) — and
//! (b) a mid-fault checkpoint restored into a fresh room and controller
//! finishes bit-identically to the uninterrupted run. The
//! `faults_ctrl_servers_per_sec` throughput of the MPC rides joins the
//! existing `repro-perf-diff` regression gate.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-faults [-- --quick] [--out PATH]
//! ```

use leakctl_bench::faults::{run_fault_sweep, FaultsScenario};
use leakctl_bench::perf::{merge_into_json, render_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_owned());

    let spec = if quick {
        FaultsScenario::quick()
    } else {
        FaultsScenario::full()
    };
    println!(
        "== leakctl fault ride-through ({}x{} racks, {} servers, transient budget {:.0} s) ==",
        spec.base.rows,
        spec.base.racks_per_row,
        spec.servers(),
        spec.transient_budget.as_secs_f64()
    );

    let sweep = run_fault_sweep(&spec);
    let mut scenario = "";
    for run in &sweep.runs {
        if run.scenario != scenario {
            println!("scenario: {}", run.scenario);
            scenario = &run.scenario;
        }
        println!(
            "  {:<10} peak die {:>6.2} C  final {:>6.2} C  over-cap {:>6.1} s  \
             recovery {:>8}  overhead {:>10}  {}",
            run.controller,
            run.outcome.stats.peak_die.degrees(),
            run.outcome.final_max_die.degrees(),
            run.outcome.stats.cap_violation_time.as_secs_f64(),
            run.outcome
                .stats
                .recovery_time
                .map_or_else(|| "n/a".to_owned(), |d| format!("{:.0} s", d.as_secs_f64())),
            run.outcome.stats.energy_overhead.map_or_else(
                || "n/a".to_owned(),
                |j| format!("{:+.4} kWh", j.as_kwh().value())
            ),
            if run.contained {
                "contained"
            } else if run.is_adaptive() {
                "NOT CONTAINED"
            } else {
                "not contained (baseline, exempt)"
            }
        );
    }
    println!(
        "mid-fault checkpoint/restore bit-identical: {}",
        sweep.checkpoint_bit_identical
    );

    let result = sweep.to_perf_result();
    println!(
        "{:<28} {:>12} server-steps in {:>8.3} s -> {:>12.0} servers-stepped/s",
        result.name,
        result.steps,
        result.wall_s,
        result.steps_per_sec()
    );

    let results = vec![result];
    let json = match std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|existing| merge_into_json(&existing, &results, quick))
    {
        Some(merged) => merged,
        None => render_json(&results, quick),
    };
    std::fs::write(&out_path, &json).expect("perf JSON written");
    println!("wrote {out_path}");

    if !sweep.adaptives_contained() {
        eprintln!(
            "FAIL: the adaptive set-point controllers must contain every scripted fault \
             (cap excursions bounded by the transient budget, end state under the cap)"
        );
        std::process::exit(1);
    }
    if !sweep.checkpoint_bit_identical {
        eprintln!("FAIL: a mid-fault checkpoint must restore to a bit-identical trajectory");
        std::process::exit(1);
    }
    println!("PASS: LUT and MPC contained every fault; checkpoint/restore is bit-identical");
}
