//! Rack-scale batching report: servers-stepped/sec through the
//! shared-factorization [`BatchSolver`](leakctl_thermal::BatchSolver)
//! versus independent full `Server::step` calls, merged into the
//! `BENCH_perf.json` perf artifact (appending to an existing report
//! from `repro-perf`, or writing a fresh one).
//!
//! Four measurements at the default 128-server rack size:
//!
//! - `rack128_server_loop` — 128 independent `Server::step` calls per
//!   simulated second: the full scalar machine including telemetry,
//!   power models and the per-server cached thermal solve.
//! - `rack128_batch_thermal` — the same 128 server-topology thermal
//!   networks advanced through one shared `(dt, flow)` factorization
//!   with a blocked multi-RHS substitution over packed slot-major
//!   states, inputs held constant (the counterpart of
//!   `server_step_1s_constant`). This is the batch stepping engine the
//!   `Fleet` integrates through.
//! - `rack128_batch_dynamic` — the same, with every lane's die powers
//!   perturbed every step (as leakage feedback does in a live fleet),
//!   so per-lane source refresh is part of the measurement.
//! - `rack128_fleet_step` — the full `Fleet::step` (batched thermal
//!   solve *plus* per-server dynamics and telemetry), for context on
//!   end-to-end rack throughput.
//! - `rack128_shard1` / `rack128_parallel` — the thread-sharded packed
//!   engine at one worker and at the best multi-worker count of a
//!   sweep up to `LEAKCTL_THREADS` (or the machine's parallelism);
//!   `rack128_parallel` carries `parallel_speedup_x`, the
//!   multi-thread-over-single-thread ratio. Results are bit-identical
//!   across the sweep.
//!
//! The headline `batch_speedup_x` extra on `rack128_batch_thermal` is
//! its ratio to `rack128_server_loop` in servers-stepped/sec;
//! `rack128_batch_dynamic` carries its own ratio (also exported as
//! `dynamic_speedup_x`).
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-rack [-- --quick] [--out PATH]
//! ```

use std::time::Instant;

use leakctl::fleet::Fleet;
use leakctl::prelude::*;
use leakctl_bench::perf::{best_of, merge_into_json, render_json, PerfResult};
use leakctl_bench::{RackKernel, ShardedRackKernel};
use leakctl_thermal::ShardPlan;

/// Rack size for the headline measurements.
const RACK: usize = 128;

/// Full scalar baseline: `RACK` independent servers, each stepped
/// through `Server::step`.
fn bench_server_loop(steps: u64) -> PerfResult {
    let mut servers: Vec<Server> = (0..RACK)
        .map(|i| Server::new(ServerConfig::default(), i as u64).expect("server builds"))
        .collect();
    // Warm up: let fans settle so flows stop changing step-to-step.
    for server in &mut servers {
        for _ in 0..120 {
            server
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .expect("warmup step succeeds");
        }
    }
    let start = Instant::now();
    for _ in 0..steps {
        for server in &mut servers {
            server
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .expect("step succeeds");
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let max_t = servers
        .iter()
        .map(|s| s.max_die_temperature().degrees())
        .fold(f64::NEG_INFINITY, f64::max);
    PerfResult {
        name: "rack128_server_loop",
        steps: steps * RACK as u64,
        wall_s,
        extra: vec![("max_die_temp_c", format!("{max_t:.6}"))],
    }
}

/// Batched thermal stepping: `RACK` identical server-topology networks
/// through one shared factorization (constant inputs).
fn bench_batch_thermal(steps: u64) -> PerfResult {
    let mut kernel = RackKernel::new(RACK);
    // Warm-up step so the shared factorization and lane caches exist.
    kernel.step_batched(1);
    let start = Instant::now();
    kernel.step_batched(steps);
    let wall_s = start.elapsed().as_secs_f64();
    PerfResult {
        name: "rack128_batch_thermal",
        steps: steps * RACK as u64,
        wall_s,
        extra: vec![(
            "max_temp_c",
            format!("{:.6}", kernel.max_temperature().degrees()),
        )],
    }
}

/// Batched thermal stepping with per-step per-lane power updates.
fn bench_batch_dynamic(steps: u64) -> PerfResult {
    let mut kernel = RackKernel::new(RACK);
    kernel.step_batched_dynamic(1);
    let start = Instant::now();
    kernel.step_batched_dynamic(steps);
    let wall_s = start.elapsed().as_secs_f64();
    PerfResult {
        name: "rack128_batch_dynamic",
        steps: steps * RACK as u64,
        wall_s,
        extra: vec![(
            "max_temp_c",
            format!("{:.6}", kernel.max_temperature().degrees()),
        )],
    }
}

/// Thread-sharded batch stepping at a fixed worker count (constant
/// inputs; one serial prepare, then every worker runs its shard's full
/// step sequence with zero cross-thread synchronization).
fn bench_sharded(steps: u64, threads: usize, name: &'static str) -> PerfResult {
    let mut kernel = ShardedRackKernel::new(RACK, threads);
    kernel.step_many(1);
    let start = Instant::now();
    kernel.step_many(steps);
    let wall_s = start.elapsed().as_secs_f64();
    PerfResult {
        name,
        steps: steps * RACK as u64,
        wall_s,
        extra: vec![
            ("threads", format!("{threads}")),
            ("shards", format!("{}", kernel.shard_count())),
            (
                "max_temp_c",
                format!("{:.6}", kernel.max_temperature().degrees()),
            ),
        ],
    }
}

/// End-to-end `Fleet::step` (batched thermal solve + per-server
/// dynamics + telemetry) at rack scale.
fn bench_fleet_step(steps: u64) -> PerfResult {
    let mut fleet = Fleet::new(ServerConfig::default(), RACK, 0.0002, 42).expect("fleet builds");
    for _ in 0..120 {
        fleet
            .step(SimDuration::from_secs(1), Utilization::FULL)
            .expect("warmup step succeeds");
    }
    let start = Instant::now();
    for _ in 0..steps {
        fleet
            .step(SimDuration::from_secs(1), Utilization::FULL)
            .expect("step succeeds");
    }
    let wall_s = start.elapsed().as_secs_f64();
    PerfResult {
        name: "rack128_fleet_step",
        steps: steps * RACK as u64,
        wall_s,
        extra: vec![
            (
                "max_die_temp_c",
                format!("{:.6}", fleet.max_die_temperature().degrees()),
            ),
            (
                "inlet_temp_c",
                format!("{:.6}", fleet.inlet_temperature().degrees()),
            ),
        ],
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_owned());

    println!("== leakctl rack-scale batching report ({RACK} servers) ==");
    let steps = if quick { 300 } else { 2_000 };
    let reps = if quick { 2 } else { 3 };
    // The batch kernels are fast enough that short runs sit inside
    // shared-runner timer noise; give them 20× the steps so the timed
    // region is tens of milliseconds and the CI regression gate stays
    // meaningful.
    let scalar = best_of(reps, || bench_server_loop(steps));
    let mut batched = best_of(reps, || bench_batch_thermal(steps * 20));
    let mut dynamic = best_of(reps, || bench_batch_dynamic(steps * 20));
    let fleet = best_of(reps, || bench_fleet_step(steps));

    // Thread sweep over the sharded engine: single-worker baseline plus
    // every power-of-two worker count up to the environment's plan
    // (LEAKCTL_THREADS or the machine). `parallel_speedup_x` is the
    // best multi-worker throughput over the 1-worker throughput —
    // results are bit-identical across the sweep, only wall-clock
    // moves.
    let max_threads = ShardPlan::from_env().threads();
    let single = best_of(reps, || bench_sharded(steps * 20, 1, "rack128_shard1"));
    let mut candidates: Vec<usize> = [2usize, 4, 8, 16]
        .into_iter()
        .filter(|&t| t < max_threads)
        .collect();
    candidates.push(max_threads.max(1));
    candidates.dedup();
    let mut parallel = candidates
        .into_iter()
        .filter(|&t| t > 1)
        .map(|t| {
            println!("  sweeping {t} worker threads...");
            best_of(reps, move || {
                bench_sharded(steps * 20, t, "rack128_parallel")
            })
        })
        .max_by(|a, b| {
            a.steps_per_sec()
                .partial_cmp(&b.steps_per_sec())
                .expect("throughputs are finite")
        })
        .unwrap_or_else(|| {
            // Single-core machine: report the 1-thread result under the
            // parallel name so the differ keeps a continuous series.
            let mut r = single.clone();
            r.name = "rack128_parallel";
            r
        });
    let parallel_speedup = parallel.steps_per_sec() / single.steps_per_sec();
    parallel
        .extra
        .push(("parallel_speedup_x", format!("{parallel_speedup:.2}")));

    let speedup = batched.steps_per_sec() / scalar.steps_per_sec();
    batched
        .extra
        .push(("batch_speedup_x", format!("{speedup:.2}")));
    let dyn_speedup = dynamic.steps_per_sec() / scalar.steps_per_sec();
    dynamic
        .extra
        .push(("batch_speedup_x", format!("{dyn_speedup:.2}")));
    dynamic
        .extra
        .push(("dynamic_speedup_x", format!("{dyn_speedup:.2}")));

    let results = vec![scalar, batched, dynamic, fleet, single, parallel];
    for r in &results {
        println!(
            "{:<24} {:>10} server-steps in {:>8.3} s -> {:>12.0} servers-stepped/s",
            r.name,
            r.steps,
            r.wall_s,
            r.steps_per_sec()
        );
        for (k, v) in &r.extra {
            println!("    {k} = {v}");
        }
    }
    println!("\nbatch vs independent Server::step: {speedup:.1}x");
    println!("dynamic-input batch vs Server::step: {dyn_speedup:.1}x");
    println!("multi-thread vs single-thread sharded: {parallel_speedup:.2}x (up to {max_threads} threads)");

    let json = match std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|existing| merge_into_json(&existing, &results, quick))
    {
        Some(merged) => merged,
        None => render_json(&results, quick),
    };
    std::fs::write(&out_path, &json).expect("perf JSON written");
    println!("wrote {out_path}");
}
