//! Perf report: machine-readable steps-per-second measurements for the
//! transient-stepping hot path, emitted as JSON (`BENCH_perf.json`).
//!
//! This is the repo's perf trajectory: CI runs it on every PR (followed
//! by `repro-rack`, which merges the rack-scale batching measurements
//! into the same file), uploads the JSON as an artifact, and gates the
//! job with `repro-perf-diff` against the previous artifact. The energy
//! figures are included so a perf change that silently alters physics
//! is caught by diffing consecutive reports.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-perf [-- --quick] [--out PATH]
//! ```

use std::time::Instant;

use leakctl::prelude::*;
use leakctl::RunOptions;
use leakctl_bench::perf::{best_of, render_json, PerfResult};
use leakctl_bench::SteppingKernel;
use leakctl_control::FixedSpeedController;
use leakctl_workload::suite;

/// Steps/sec of the raw thermal-network stepping kernel at constant
/// inputs (stateless `ThermalNetwork::step`, which reassembles and
/// refactors every call).
fn bench_network_stateless(steps: u64) -> PerfResult {
    let mut kernel = SteppingKernel::new();
    let start = Instant::now();
    kernel.step_stateless(steps);
    let wall_s = start.elapsed().as_secs_f64();
    PerfResult {
        name: "network_step_stateless",
        steps,
        wall_s,
        extra: vec![(
            "max_temp_c",
            format!("{:.6}", kernel.max_temperature().degrees()),
        )],
    }
}

/// Steps/sec of the same kernel through a persistent
/// `TransientSolver` — cached assembly, reused LU factorization,
/// zero allocation per step.
fn bench_network_cached(steps: u64) -> PerfResult {
    let mut kernel = SteppingKernel::new();
    let start = Instant::now();
    kernel.step_cached(steps);
    let wall_s = start.elapsed().as_secs_f64();
    PerfResult {
        name: "network_step_cached",
        steps,
        wall_s,
        extra: vec![(
            "max_temp_c",
            format!("{:.6}", kernel.max_temperature().degrees()),
        )],
    }
}

/// Steps/sec of the raw `Server::step` hot path at constant inputs —
/// the regime where factorization reuse pays off.
fn bench_server_step(steps: u64) -> PerfResult {
    let mut server = Server::new(ServerConfig::default(), 1).expect("server builds");
    // Warm up: let fans settle so flows stop changing step-to-step.
    for _ in 0..120 {
        server
            .step(SimDuration::from_secs(1), Utilization::FULL)
            .expect("warmup step succeeds");
    }
    let start = Instant::now();
    for _ in 0..steps {
        server
            .step(SimDuration::from_secs(1), Utilization::FULL)
            .expect("step succeeds");
    }
    let wall_s = start.elapsed().as_secs_f64();
    PerfResult {
        name: "server_step_1s_constant",
        steps,
        wall_s,
        extra: vec![(
            "max_die_temp_c",
            format!("{:.6}", server.max_die_temperature().degrees()),
        )],
    }
}

/// One full 80-minute Table-I-protocol run (Default controller on
/// Test-3) — the paper's headline workload and the acceptance metric
/// for stepping-engine optimizations. Energy is reported to 1e-12 kWh
/// so perf PRs can prove the physics is untouched.
fn bench_run80min(quick: bool) -> PerfResult {
    let options = RunOptions {
        record: false,
        ..RunOptions::default()
    };
    let profile = if quick {
        Profile::constant(Utilization::FULL, SimDuration::from_mins(10)).expect("static profile")
    } else {
        suite::test3()
    };
    let sim_secs = (options.warmup + options.stabilize + options.cooldown).as_secs_f64()
        + profile.duration().as_secs_f64();
    let steps = (sim_secs / options.step.as_secs_f64()).round() as u64;
    let mut controller = FixedSpeedController::paper_default();
    let start = Instant::now();
    let outcome =
        leakctl::run_experiment(&options, profile, &mut controller, 42).expect("run succeeds");
    let wall_s = start.elapsed().as_secs_f64();
    PerfResult {
        name: if quick {
            "run10min_default_constant"
        } else {
            "run80min_default_test3"
        },
        steps,
        wall_s,
        extra: vec![
            (
                "total_energy_kwh",
                format!("{:.12}", outcome.metrics.total_energy.as_kwh().value()),
            ),
            (
                "fan_energy_kwh",
                format!("{:.12}", outcome.metrics.fan_energy.as_kwh().value()),
            ),
            (
                "peak_power_w",
                format!("{:.6}", outcome.metrics.peak_power.value()),
            ),
            (
                "max_temp_c",
                format!("{:.6}", outcome.metrics.max_temp.degrees()),
            ),
        ],
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_owned());

    println!("== leakctl perf report ==");
    let step_count = if quick { 2_000 } else { 20_000 };
    let reps = if quick { 2 } else { 5 };
    let results = vec![
        best_of(reps, || bench_network_stateless(10 * step_count)),
        best_of(reps, || bench_network_cached(10 * step_count)),
        best_of(reps, || bench_server_step(step_count)),
        best_of(reps, || bench_run80min(quick)),
    ];
    for r in &results {
        println!(
            "{:<28} {:>9} steps in {:>8.3} s -> {:>12.0} steps/s",
            r.name,
            r.steps,
            r.wall_s,
            r.steps_per_sec()
        );
        for (k, v) in &r.extra {
            println!("    {k} = {v}");
        }
    }

    let json = render_json(&results, quick);
    std::fs::write(&out_path, &json).expect("perf JSON written");
    println!("\nwrote {out_path}:\n{json}");
}
