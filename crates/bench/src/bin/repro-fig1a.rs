//! Reproduces **Fig. 1(a)**: CPU temperature transients at 100 %
//! utilization for fan speeds 1800–4200 RPM, including the fan-speed-
//! dependent thermal time constants the paper highlights.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-fig1a
//! ```

use leakctl::report::{ascii_chart, ChartSeries};
use leakctl::{fig1a, RunOptions};
use leakctl_bench::REPRO_SEED;

fn main() {
    println!("== Fig. 1(a) reproduction ==");
    println!("(100% duty cycle; fan speed set at t = 0 after a cold soak)");
    let fig = fig1a(&RunOptions::default(), REPRO_SEED).expect("fig1a runs");

    let series: Vec<ChartSeries> = fig
        .series
        .iter()
        .map(|s| ChartSeries {
            label: s.label.clone(),
            points: s.points.clone(),
        })
        .collect();
    println!("{}", ascii_chart(&series, 90, 22));

    println!("steady temperatures and 63% rise times:");
    for s in &fig.series {
        let t_end = s.points.last().map_or(f64::NAN, |p| p.1);
        // Steady value ≈ temperature just before the cooldown phase
        // (t = 35 min: 5 min stabilization + 30 min run).
        let steady = s
            .points
            .iter()
            .rfind(|(m, _)| *m <= 35.0)
            .map_or(f64::NAN, |p| p.1);
        // Baseline at the load start (t = 5 min, end of the idle
        // stabilization), not at t = 0 — the rise we time is the
        // load-step response.
        let t0 = s
            .points
            .iter()
            .rfind(|(m, _)| *m <= 5.0)
            .map_or(f64::NAN, |p| p.1);
        let threshold = t0 + 0.632 * (steady - t0);
        let tau = s
            .points
            .iter()
            .find(|(m, t)| *m >= 5.0 && *t >= threshold)
            .map_or(f64::NAN, |(m, _)| m - 5.0);
        println!(
            "  {:>9}: start {t0:5.1} C, steady {steady:5.1} C, tau63 ~ {tau:4.1} min, end-of-cooldown {t_end:5.1} C",
            s.label
        );
    }
    println!(
        "\npaper: 1800 RPM settles after ~15 min, 4200 RPM after ~5 min;\n\
         steady spread ~86 C (1800) down to ~55 C (4200).\n"
    );
    println!("CSV:\n{}", fig.to_csv());
}
