//! Reproduces **Fig. 1(b)**: CPU temperature at 1800 RPM for
//! utilization levels 25/50/75/100 %, showing the PWM-driven thermal
//! oscillations and the two transient trends the paper describes.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-fig1b
//! ```

use leakctl::report::{ascii_chart, ChartSeries};
use leakctl::{fig1b, RunOptions};
use leakctl_bench::REPRO_SEED;

fn main() {
    println!("== Fig. 1(b) reproduction ==");
    println!("(fan speed pinned at 1800 RPM; varying duty cycle)");
    let fig = fig1b(&RunOptions::default(), REPRO_SEED).expect("fig1b runs");

    let series: Vec<ChartSeries> = fig
        .series
        .iter()
        .map(|s| ChartSeries {
            label: s.label.clone(),
            points: s.points.clone(),
        })
        .collect();
    println!("{}", ascii_chart(&series, 90, 22));

    println!("oscillation amplitude in the loaded steady window (20-35 min):");
    for s in &fig.series {
        let window: Vec<f64> = s
            .points
            .iter()
            .filter(|(m, _)| (20.0..=35.0).contains(m))
            .map(|(_, t)| *t)
            .collect();
        let hi = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lo = window.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "  {:>4}: mean {:5.1} C, peak-to-peak {:4.1} C",
            s.label,
            window.iter().sum::<f64>() / window.len().max(1) as f64,
            hi - lo
        );
    }
    println!(
        "\npaper: fast trend raises temperature 5-8 C in <30 s on load steps;\n\
         oscillations ride the slow (up to 15 min) trend at 1800 RPM.\n"
    );
    println!("CSV:\n{}", fig.to_csv());
}
