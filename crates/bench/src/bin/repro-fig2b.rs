//! Reproduces **Fig. 2(b)**: fan + leakage power versus average CPU
//! temperature for utilization levels 25–100 % — every level exhibits
//! an optimum fan speed, all below the 75 °C operational cap.
//!
//! ```text
//! cargo run --release -p leakctl-bench --bin repro-fig2b
//! ```

use leakctl::report::{ascii_chart, ChartSeries};
use leakctl::{fig2b, paper};
use leakctl_bench::{paper_pipeline, REPRO_SEED};

fn main() {
    println!("== Fig. 2(b) reproduction ==");
    println!("running the characterization sweep + model fitting...");
    let pipeline = paper_pipeline(REPRO_SEED);
    let fig = fig2b(&pipeline.data, &pipeline.fitted).expect("fig2b builds");

    let series: Vec<ChartSeries> = fig
        .groups
        .iter()
        .map(|(label, points)| ChartSeries {
            label: label.clone(),
            points: points
                .iter()
                .map(|p| (p.temp_c, p.fan_plus_leak()))
                .collect(),
        })
        .collect();
    println!("{}", ascii_chart(&series, 80, 18));

    println!("per-utilization optima (paper: all optima at T <= ~70 C):");
    for (label, _) in &fig.groups {
        if let Some(opt) = fig.optimum_of(label) {
            println!(
                "  {label:>4}: optimum {:.0} RPM at {:.1} C, fan+leak {:.1} W {}",
                opt.rpm,
                opt.temp_c,
                opt.fan_plus_leak(),
                if opt.temp_c <= paper::OPTIMUM_TEMP_C + 2.0 {
                    "(<= ~70 C \u{2713})"
                } else {
                    "(above 70 C!)"
                }
            );
        }
    }
    println!("\nCSV:\n{}", fig.to_csv());
}
