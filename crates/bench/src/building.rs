//! Building-scale resilience sweep: the harness behind the
//! `repro-building` acceptance gate.
//!
//! A four-room [`Building`] fed by one finite
//! [`ChilledWaterLoop`](leakctl_thermal::ChilledWaterLoop)
//! rides three building-scale fault scripts — a chiller derate/outage,
//! a heat wave that locks out the economizer while a chilled-water
//! excursion raises the supply floor, and a correlated all-room load
//! surge on a derated plant — under per-room LUT and MPC set-point
//! controllers with a [`Supervisor`] watchdog on top. The gate requires
//! both supervised controllers to **contain** every script: the hottest
//! die across the building may cross the cap only within the transient
//! budget, must end the run back under it, and no invariant monitor
//! (NaN, energy conservation) may trip.
//!
//! The sweep also pins the building-scale robustness substrate: a
//! mid-fault [`BuildingScenarioRunner::checkpoint`] restored into fresh
//! buildings built on thread plans {1, 2, 8} must finish
//! **bit-identically** to the uninterrupted plan-1 run. The
//! `repro-building` binary renders everything into `BENCH_perf.json`
//! and exits nonzero unless both properties hold.

use std::time::Instant;

use leakctl::building::{Building, BuildingConfig};
use leakctl::control::{ControlAction, RoomController};
use leakctl::room::RoomConfig;
use leakctl::scenario::{BuildingEvent, BuildingOutcome, BuildingScenario, BuildingScenarioRunner};
use leakctl::supervise::{Supervisor, SupervisorConfig};
use leakctl_thermal::{ChilledWaterSpec, ShardPlan};
use leakctl_units::{Celsius, Rpm, SimDuration, Utilization, Watts};

use crate::perf::PerfResult;
use crate::setpoint::SetPointScenario;

/// Configuration of one building-resilience sweep: the per-room floor
/// geometry and controller recipes (borrowed from [`SetPointScenario`]
/// so the building runs the exact controllers the room-scale figures
/// evaluate), plus the plant sizing and supervision knobs.
#[derive(Debug, Clone)]
pub struct BuildingSpec {
    /// Per-room geometry, cap, fan floor and the LUT/MPC recipes.
    pub base: SetPointScenario,
    /// Rooms sharing the chilled-water plant.
    pub rooms: usize,
    /// Hot-aisle recirculation fraction in every room.
    pub beta: f64,
    /// Plant capacity as a multiple of the building's *measured*
    /// full-load IT demand — >1 so a healthy plant serves full load,
    /// close enough to 1 that faults genuinely oversubscribe it.
    pub capacity_margin: f64,
    /// CRAH air-side approach over the chilled-water supply (°C).
    pub air_approach: f64,
    /// Settling steps under the controllers before each measured
    /// script.
    pub warmup_steps: u64,
    /// Longest cap excursion a supervised controller may ride per
    /// script and still count as containing the fault.
    pub transient_budget: SimDuration,
}

impl BuildingSpec {
    /// The acceptance configuration: four 32-server rooms (1 × 2 × 16)
    /// on one plant sized 1.15× the building's full-load demand.
    #[must_use]
    pub fn full() -> Self {
        let mut base = SetPointScenario::full();
        base.rows = 1;
        base.racks_per_row = 2;
        base.servers_per_rack = 16;
        Self {
            base,
            rooms: 4,
            beta: 0.15,
            capacity_margin: 1.15,
            air_approach: 5.0,
            warmup_steps: 600,
            transient_budget: SimDuration::from_secs(300),
        }
    }

    /// A reduced smoke configuration: four 4-server rooms, the same
    /// scripts and gates over much slower small-room dynamics.
    #[must_use]
    pub fn quick() -> Self {
        let mut base = SetPointScenario::quick();
        base.rows = 1;
        base.racks_per_row = 2;
        base.servers_per_rack = 2;
        Self {
            base,
            rooms: 4,
            beta: 0.2,
            capacity_margin: 1.15,
            air_approach: 5.0,
            warmup_steps: 300,
            transient_budget: SimDuration::from_secs(300),
        }
    }

    /// Total server count across the building.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.rooms * self.base.servers()
    }

    fn room_config(&self) -> RoomConfig {
        let mut config = RoomConfig::new(
            self.base.rows,
            self.base.racks_per_row,
            self.base.servers_per_rack,
        );
        config.recirculation_fraction = self.beta;
        config.seed = self.base.seed;
        config
    }

    /// Sizes the plant against the building's *measured* full-load
    /// demand: one room is settled at full load and its steady IT power
    /// scaled by the room count and the capacity margin. Deterministic,
    /// so every run (and every thread plan) sees the identical spec.
    #[must_use]
    pub fn plant_spec(&self) -> ChilledWaterSpec {
        let mut room = leakctl::room::Room::new(self.room_config()).expect("probe room builds");
        room.apply(&ControlAction::hold().with_fan_floor(Rpm::new(self.base.fan_floor)))
            .expect("fan floor applies");
        for _ in 0..self.warmup_steps {
            room.step(self.base.dt, Utilization::FULL)
                .expect("probe room steps");
        }
        let demand = room.total_power().value() * self.rooms as f64;
        ChilledWaterSpec {
            capacity: Watts::new(demand * self.capacity_margin),
            ..ChilledWaterSpec::default()
        }
    }

    /// A fresh building on `plan` with the scenario fan floor applied
    /// in every room.
    #[must_use]
    pub fn fresh_building(&self, plant: ChilledWaterSpec, plan: ShardPlan) -> Building {
        let mut config = BuildingConfig::uniform(self.rooms, &self.room_config(), plant);
        config.air_approach = self.air_approach;
        let mut building = Building::with_plan(&config, plan).expect("building builds");
        for room in 0..self.rooms {
            building
                .apply(
                    room,
                    &ControlAction::hold().with_fan_floor(Rpm::new(self.base.fan_floor)),
                )
                .expect("fan floor applies");
        }
        building
    }

    /// One supervised controller set: a clone of `prototype` per room.
    fn controller_fleet(
        &self,
        prototype: &dyn Fn() -> Box<dyn RoomController>,
    ) -> Vec<Box<dyn RoomController>> {
        (0..self.rooms).map(|_| prototype()).collect()
    }

    /// A supervisor tuned to the scenario cap.
    #[must_use]
    pub fn supervisor(&self) -> Supervisor {
        Supervisor::new(
            self.rooms,
            SupervisorConfig::for_cap(Celsius::new(self.base.die_limit)),
        )
    }

    /// The three scripted cases the gate runs, all judged against the
    /// scenario cap:
    ///
    /// 1. `chiller-failure`: the mechanical chiller derates to 45 % at
    ///    t = 300 s under a 65 % building load and is repaired twenty
    ///    minutes later — the plant oversubscribes, the watchdog sheds,
    ///    the rooms ride a deep CRAH derate.
    /// 2. `heat-wave`: a cool morning (economizer active) heats to
    ///    38 °C — economizer lockout, condenser-lift COP and capacity
    ///    derates — while a chilled-water excursion lifts every room's
    ///    supply floor; the wave breaks at t = 1600 s.
    /// 3. `correlated-surge`: every room surges from 25 % to full load
    ///    on a plant already derated to 75 % — the correlated spike the
    ///    per-room controllers cannot see coming and the watchdog must
    ///    absorb.
    #[must_use]
    pub fn cases(&self) -> Vec<BuildingScenario> {
        let dt = self.base.dt;
        let dur = SimDuration::from_secs(2_400);
        let cap = Celsius::new(self.base.die_limit);
        let load = |f: f64| Utilization::saturating_from_fraction(f);

        let chiller = BuildingScenario::new("chiller-failure", dur, dt)
            .with_die_cap(cap)
            .with_initial_load(load(0.65))
            .at(SimDuration::from_secs(300), BuildingEvent::Chiller(0.45))
            .at(SimDuration::from_secs(1_500), BuildingEvent::Chiller(1.0));

        let heat_wave = BuildingScenario::new("heat-wave", dur, dt)
            .with_die_cap(cap)
            .with_initial_load(load(0.6))
            .at(SimDuration::ZERO, BuildingEvent::Outdoor(Celsius::new(8.0)))
            .at(
                SimDuration::from_secs(400),
                BuildingEvent::Outdoor(Celsius::new(24.0)),
            )
            .at(
                SimDuration::from_secs(700),
                BuildingEvent::Outdoor(Celsius::new(38.0)),
            )
            .at(
                SimDuration::from_secs(700),
                BuildingEvent::ChwExcursion(6.0),
            )
            .at(
                SimDuration::from_secs(1_600),
                BuildingEvent::Outdoor(Celsius::new(20.0)),
            )
            .at(
                SimDuration::from_secs(1_600),
                BuildingEvent::ChwExcursion(0.0),
            );

        let surge = BuildingScenario::new("correlated-surge", dur, dt)
            .with_die_cap(cap)
            .with_initial_load(load(0.25))
            .at(SimDuration::from_secs(250), BuildingEvent::Chiller(0.75))
            .at(
                SimDuration::from_secs(300),
                BuildingEvent::LoadSurge(Utilization::FULL),
            )
            .at(SimDuration::from_secs(1_400), BuildingEvent::Chiller(1.0))
            .at(
                SimDuration::from_secs(1_800),
                BuildingEvent::LoadSurge(load(0.4)),
            );

        vec![chiller, heat_wave, surge]
    }

    /// Settles a fresh building at the script's initial load *under the
    /// controllers and supervisor* (so all reach their joint operating
    /// point), resets accounting and supervision counters, then drives
    /// the script through a [`BuildingScenarioRunner`].
    fn run_script(
        &self,
        plant: ChilledWaterSpec,
        script: &BuildingScenario,
        controllers: &mut [Box<dyn RoomController>],
        supervisor: &mut Supervisor,
    ) -> BuildingOutcome {
        let mut building = self.fresh_building(plant, ShardPlan::new(1));
        for controller in controllers.iter_mut() {
            controller.reset();
        }
        supervisor.reset();
        let warmup =
            BuildingScenario::new("warmup", self.base.dt * self.warmup_steps, self.base.dt)
                .with_die_cap(script.die_cap())
                .with_initial_load(script.initial_load());
        BuildingScenarioRunner::new(warmup, self.rooms)
            .run(&mut building, controllers, supervisor)
            .expect("warmup runs");
        building.reset_accounting();
        supervisor.reset();
        BuildingScenarioRunner::new(script.clone(), self.rooms)
            .run(&mut building, controllers, supervisor)
            .expect("scripted run succeeds")
    }

    /// Runs one supervised controller recipe through one case.
    fn run_one(
        &self,
        plant: ChilledWaterSpec,
        script: &BuildingScenario,
        prototype: &dyn Fn() -> Box<dyn RoomController>,
        name: &str,
    ) -> BuildingRun {
        let mut controllers = self.controller_fleet(prototype);
        let mut supervisor = self.supervisor();
        let start = Instant::now();
        let outcome = self.run_script(plant, script, &mut controllers, &mut supervisor);
        let wall_s = start.elapsed().as_secs_f64();
        let contained = outcome.stats.cap_violation_time <= self.transient_budget
            && outcome.final_max_die.degrees() <= self.base.die_limit
            && outcome.trips.invariant() == 0;
        BuildingRun {
            scenario: script.name().to_owned(),
            controller: name.to_owned(),
            outcome,
            contained,
            wall_s,
            server_steps: script.steps() * self.servers() as u64,
        }
    }

    /// Verifies the building-scale robustness substrate: drive the
    /// chiller-failure case under supervised LUT on the plan-1
    /// building, checkpoint mid-fault (halfway through, inside the
    /// derate window), restore into fresh buildings built on thread
    /// plans {1, 2, 8}, and require every resumed run to finish
    /// bit-identically to the uninterrupted plan-1 run.
    #[must_use]
    pub fn checkpoint_round_trip(&self, plant: ChilledWaterSpec) -> bool {
        let script = &self.cases()[0];
        let lut = self.base.lut_controller();
        let fleet = || -> Vec<Box<dyn RoomController>> {
            (0..self.rooms)
                .map(|_| Box::new(lut.clone()) as Box<dyn RoomController>)
                .collect()
        };
        let fingerprint = |building: &Building, outcome: &BuildingOutcome| {
            let mut aisles = Vec::new();
            for r in 0..building.rooms() {
                let room = building.room(r).expect("room index in range");
                for rack in 0..room.racks() {
                    aisles.push(room.cold_aisle_temperature(rack).degrees().to_bits());
                }
            }
            (
                outcome.total_energy.value().to_bits(),
                outcome.final_max_die.degrees().to_bits(),
                outcome.stats.cap_violation_time,
                outcome.stats.decisions,
                (
                    outcome.trips.nan,
                    outcome.trips.conservation,
                    outcome.trips.runaway,
                ),
                outcome.sheds,
                aisles,
            )
        };

        let mut building = self.fresh_building(plant, ShardPlan::new(1));
        let mut controllers = fleet();
        let mut supervisor = self.supervisor();
        let mut runner = BuildingScenarioRunner::new(script.clone(), self.rooms);
        let reference = runner
            .run(&mut building, &mut controllers, &mut supervisor)
            .expect("reference run");
        let reference = fingerprint(&building, &reference);

        let mid = script.steps() / 2;
        let mut building = self.fresh_building(plant, ShardPlan::new(1));
        let mut controllers = fleet();
        let mut supervisor = self.supervisor();
        let mut runner = BuildingScenarioRunner::new(script.clone(), self.rooms);
        runner
            .run_steps(&mut building, &mut controllers, &mut supervisor, mid)
            .expect("pre-checkpoint run");
        let snap = runner.checkpoint(&mut building, &controllers, &supervisor);

        [1, 2, 8].into_iter().all(|plan| {
            let mut building = self.fresh_building(plant, ShardPlan::new(plan));
            let mut controllers = fleet();
            let mut supervisor = self.supervisor();
            let mut runner = BuildingScenarioRunner::new(script.clone(), self.rooms);
            runner
                .restore(&mut building, &mut controllers, &mut supervisor, &snap)
                .expect("restore succeeds");
            let outcome = runner
                .run(&mut building, &mut controllers, &mut supervisor)
                .expect("resumed run");
            fingerprint(&building, &outcome) == reference
        })
    }
}

/// One supervised controller's ride through one building fault script.
#[derive(Debug, Clone)]
pub struct BuildingRun {
    /// The script's name.
    pub scenario: String,
    /// Controller label (`LUT`, `MPC`).
    pub controller: String,
    /// The full scenario outcome (peak die, violation/recovery times,
    /// energies, supervision counters).
    pub outcome: BuildingOutcome,
    /// `true` when the excursion stayed within the transient budget,
    /// the run ended under the cap and no invariant monitor tripped.
    pub contained: bool,
    /// Wall-clock seconds of the scripted run.
    pub wall_s: f64,
    /// Server-steps of the scripted run.
    pub server_steps: u64,
}

/// A full building sweep: every case × supervised controller, plus the
/// cross-plan checkpoint bit-identity verdict.
#[derive(Debug, Clone)]
pub struct BuildingSweep {
    /// Per-(case, controller) rides, in sweep order.
    pub runs: Vec<BuildingRun>,
    /// Whether the mid-fault checkpoint restored onto thread plans
    /// {1, 2, 8} finished bit-identical to the uninterrupted run.
    pub checkpoint_bit_identical: bool,
    /// The transient budget the rides were judged against.
    pub transient_budget: SimDuration,
}

impl BuildingSweep {
    /// `true` when every supervised ride contained its fault (bounded
    /// transient, final state under the cap, zero invariant trips).
    #[must_use]
    pub fn all_contained(&self) -> bool {
        !self.runs.is_empty() && self.runs.iter().all(|r| r.contained)
    }

    /// The acceptance verdict: containment *and* cross-plan checkpoint
    /// bit-identity.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.all_contained() && self.checkpoint_bit_identical
    }

    /// Renders the sweep as one `leakctl-perf/v1` measurement —
    /// servers-stepped/sec of the MPC rides (the heaviest path) with
    /// the per-ride verdicts and supervision counters as extras.
    #[must_use]
    pub fn to_perf_result(&self) -> PerfResult {
        let mpc_steps: u64 = self
            .runs
            .iter()
            .filter(|r| r.controller == "MPC")
            .map(|r| r.server_steps)
            .sum();
        let mpc_wall: f64 = self
            .runs
            .iter()
            .filter(|r| r.controller == "MPC")
            .map(|r| r.wall_s)
            .sum();
        let per_run: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    "{{\"scenario\": \"{}\", \"controller\": \"{}\", \"peak_die_c\": {:.3}, \
                     \"final_die_c\": {:.3}, \"cap_violation_s\": {:.1}, \"sheds\": {}, \
                     \"escalations\": {}, \"shed_time_s\": {:.0}, \"invariant_trips\": {}, \
                     \"contained\": {}}}",
                    r.scenario,
                    r.controller,
                    r.outcome.stats.peak_die.degrees(),
                    r.outcome.final_max_die.degrees(),
                    r.outcome.stats.cap_violation_time.as_secs_f64(),
                    r.outcome.sheds,
                    r.outcome.escalations,
                    r.outcome.shed_time.as_secs_f64(),
                    r.outcome.trips.invariant(),
                    r.contained,
                )
            })
            .collect();
        PerfResult {
            name: "building_ctrl_servers_per_sec",
            steps: mpc_steps,
            wall_s: mpc_wall.max(1e-12),
            extra: vec![
                ("building_contained", format!("{}", self.all_contained())),
                (
                    "checkpoint_bit_identical",
                    format!("{}", self.checkpoint_bit_identical),
                ),
                (
                    "transient_budget_s",
                    format!("{:.0}", self.transient_budget.as_secs_f64()),
                ),
                ("per_run", format!("[{}]", per_run.join(", "))),
            ],
        }
    }
}

/// Runs the whole sweep: every case under supervised LUT and MPC
/// (identical buildings, plant sizing, loads and seeds), then the
/// cross-plan checkpoint round trip.
#[must_use]
pub fn run_building_sweep(spec: &BuildingSpec) -> BuildingSweep {
    let plant = spec.plant_spec();
    let lut = spec.base.lut_controller();
    let mpc = spec.base.mpc_controller();
    let mut runs = Vec::new();
    for script in &spec.cases() {
        runs.push(spec.run_one(plant, script, &|| Box::new(lut.clone()), "LUT"));
        runs.push(spec.run_one(plant, script, &|| Box::new(mpc.clone()), "MPC"));
    }
    BuildingSweep {
        runs,
        checkpoint_bit_identical: spec.checkpoint_round_trip(plant),
        transient_budget: spec.transient_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ride(controller: &str, violation_s: u64, final_die: f64, contained: bool) -> BuildingRun {
        let mut outcome = {
            // A real (one-step) outcome shaped only for verdict
            // plumbing — `BuildingOutcome` is non-exhaustive.
            let mut spec = BuildingSpec::quick();
            spec.warmup_steps = 5;
            let plant = spec.plant_spec();
            let script = &spec.cases()[0];
            let mut building = spec.fresh_building(plant, ShardPlan::new(1));
            let mut controllers: Vec<Box<dyn RoomController>> = (0..spec.rooms)
                .map(|_| {
                    Box::new(leakctl::control::FixedSupplyController::new(Celsius::new(
                        18.0,
                    ))) as Box<dyn RoomController>
                })
                .collect();
            let mut supervisor = spec.supervisor();
            let mut runner = BuildingScenarioRunner::new(script.clone(), spec.rooms);
            runner
                .run_steps(&mut building, &mut controllers, &mut supervisor, 1)
                .unwrap();
            runner.outcome(&building, &supervisor)
        };
        outcome.stats.cap_violation_time = SimDuration::from_secs(violation_s);
        outcome.stats.peak_die = Celsius::new(final_die + 2.0);
        outcome.final_max_die = Celsius::new(final_die);
        outcome.sheds = 1;
        outcome.shed_time = SimDuration::from_secs(600);
        BuildingRun {
            scenario: "chiller-failure".to_owned(),
            controller: controller.to_owned(),
            outcome,
            contained,
            wall_s: 0.1,
            server_steps: 1_000,
        }
    }

    #[test]
    fn scripts_are_well_formed() {
        for spec in [BuildingSpec::quick(), BuildingSpec::full()] {
            let cases = spec.cases();
            assert_eq!(cases.len(), 3);
            let names: Vec<&str> = cases.iter().map(|c| c.name()).collect();
            assert_eq!(names, ["chiller-failure", "heat-wave", "correlated-surge"]);
            for case in &cases {
                assert!(case.steps() > 0);
                assert!(case.events() >= 2, "{}", case.name());
            }
            assert!(spec.servers() >= 8);
        }
    }

    #[test]
    fn plant_is_sized_above_full_load_demand() {
        let spec = BuildingSpec::quick();
        let plant = spec.plant_spec();
        // Sized with margin: a healthy plant must cover the probe
        // demand with room to spare but stay tight enough that a 45 %
        // chiller derate oversubscribes it.
        let per_room = plant.capacity.value() / (spec.capacity_margin * spec.rooms as f64);
        assert!(per_room > 0.0 && per_room.is_finite());
        assert!(plant.capacity.value() * 0.45 < per_room * spec.rooms as f64);
    }

    #[test]
    fn gate_requires_containment_and_bit_identity() {
        let sweep = BuildingSweep {
            runs: vec![ride("LUT", 30, 70.0, true), ride("MPC", 0, 69.0, true)],
            checkpoint_bit_identical: true,
            transient_budget: SimDuration::from_secs(300),
        };
        assert!(sweep.all_contained());
        assert!(sweep.accepted());

        let mut failed = sweep.clone();
        failed.runs[0].contained = false;
        assert!(!failed.accepted());

        let mut broken = sweep;
        broken.checkpoint_bit_identical = false;
        assert!(!broken.accepted());
    }

    #[test]
    fn sweep_renders_verdicts_and_per_run_extras() {
        let sweep = BuildingSweep {
            runs: vec![ride("LUT", 30, 70.0, true), ride("MPC", 0, 69.0, true)],
            checkpoint_bit_identical: true,
            transient_budget: SimDuration::from_secs(300),
        };
        let result = sweep.to_perf_result();
        assert_eq!(result.name, "building_ctrl_servers_per_sec");
        let extras: Vec<&str> = result.extra.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            extras,
            [
                "building_contained",
                "checkpoint_bit_identical",
                "transient_budget_s",
                "per_run"
            ]
        );
        assert_eq!(result.extra[0].1, "true");
        let per_run = &result.extra[3].1;
        assert!(per_run.starts_with('['));
        assert!(per_run.contains("\"controller\": \"MPC\""));
        assert!(per_run.contains("\"sheds\": 1"));
        // Only MPC rides feed the throughput number.
        assert_eq!(result.steps, 1_000);
    }

    #[test]
    fn quick_sweep_contains_and_round_trips() {
        // The full acceptance run lives in the repro-building binary;
        // this is a fast smoke check of the same plumbing end to end on
        // the tiny quick floor.
        let mut spec = BuildingSpec::quick();
        spec.warmup_steps = 60;
        let sweep = run_building_sweep(&spec);
        assert_eq!(sweep.runs.len(), 6);
        assert!(sweep.checkpoint_bit_identical);
        assert!(sweep.all_contained(), "runs: {:?}", sweep.runs);
        for run in &sweep.runs {
            assert!(run.outcome.stats.decisions > 0);
            assert!(run.outcome.stats.peak_die.degrees() > 30.0);
            assert_eq!(run.outcome.trips.invariant(), 0);
        }
    }
}
