//! Fault-ride-through sweep: the harness behind the `repro-faults`
//! acceptance gate.
//!
//! The scenario harness in [`leakctl::scenario`] scripts plant faults —
//! CRAH derating and outage, blocked tiles, degraded server fans — and
//! load spikes against a closed control loop. This module turns that
//! into a CI gate on the 256-server repro room: every script runs under
//! a fixed-supply baseline, the LUT set-point controller and the
//! receding-horizon MPC, and the *adaptive* controllers must **contain**
//! each fault — the hottest die may cross the 85 °C cap only for a
//! bounded, documented transient
//! ([`FaultsScenario::transient_budget`]) while the controller detects
//! the fault and swings the plant toward max cooling, and must end the
//! run back under the cap. The fixed baseline is reported but never
//! gated: riding out faults is exactly what the adaptive layer is for.
//!
//! The sweep also pins the robustness substrate underneath the gate: a
//! mid-fault [`ScenarioRunner::checkpoint`] restored into a fresh room
//! and controller must finish **bit-identically** to the uninterrupted
//! run. The `repro-faults` binary renders everything into
//! `BENCH_perf.json` and exits nonzero unless both properties hold.

use std::time::Instant;

use leakctl::control::{ControlAction, FixedSupplyController, RoomController};
use leakctl::prelude::FanFault;
use leakctl::room::{Room, RoomConfig};
use leakctl::scenario::{Scenario, ScenarioEvent, ScenarioOutcome, ScenarioRunner};
use leakctl_units::{Celsius, Rpm, SimDuration, Utilization};

use crate::perf::PerfResult;
use crate::setpoint::SetPointScenario;

/// One scripted fault case: the faulted script the controllers are
/// judged on and its fault-free twin (same load timeline, no plant
/// faults) used to account the energy overhead of riding the fault out.
#[derive(Debug, Clone)]
pub struct FaultCase {
    /// The faulted script.
    pub script: Scenario,
    /// The same timeline with every fault event stripped; `None` when
    /// the script carries no faults (then the overhead is zero by
    /// construction).
    pub fault_free: Option<Scenario>,
}

/// Configuration of one fault-ride-through sweep: the floor geometry
/// and controller recipes (borrowed from [`SetPointScenario`] so the
/// controllers under fault are the exact ones the set-point figure
/// evaluates), plus the fault-specific knobs.
#[derive(Debug, Clone)]
pub struct FaultsScenario {
    /// Geometry, cap, fan floor and the LUT/MPC recipes.
    pub base: SetPointScenario,
    /// Hot-aisle recirculation fraction for every run.
    pub beta: f64,
    /// The fixed baseline's supply (°C) — a warm, energy-optimal
    /// choice that is feasible on a healthy plant at the scripts' load
    /// levels, so any violation it shows is attributable to the fault.
    pub fixed_supply: f64,
    /// Settling steps under the controller before each measured script.
    pub warmup_steps: u64,
    /// Longest cap excursion an adaptive controller may ride per
    /// script and still count as containing the fault.
    pub transient_budget: SimDuration,
}

impl FaultsScenario {
    /// The acceptance configuration: the 256-server repro room
    /// (matching `repro-setpoint`'s full geometry) at β = 0.15.
    #[must_use]
    pub fn full() -> Self {
        Self {
            base: SetPointScenario::full(),
            beta: 0.15,
            fixed_supply: 24.0,
            warmup_steps: 600,
            transient_budget: SimDuration::from_secs(300),
        }
    }

    /// A reduced smoke configuration on the 8-server quick floor: the
    /// same scripts and gates over much slower small-room thermal
    /// dynamics.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            base: SetPointScenario::quick(),
            beta: 0.2,
            fixed_supply: 24.0,
            warmup_steps: 300,
            transient_budget: SimDuration::from_secs(300),
        }
    }

    /// Total server count.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.base.servers()
    }

    /// The three scripted cases the gate runs, all judged against the
    /// scenario cap:
    ///
    /// 1. `crah-failure`: the CRAH plant loses half its capacity at
    ///    t = 300 s under a 65 % load and is repaired twenty minutes
    ///    later.
    /// 2. `fan-degradation`: a quarter of the first rack's servers
    ///    drop to 55 % fan flow at t = 300 s (a shared fan-tray
    ///    failure) and are swapped at t = 1500 s.
    /// 3. `load-spike`: a square-wave load swing (25 % ⇄ 100 %) whose
    ///    first full-load segment rides a mild 90 %-capacity derate —
    ///    no outage, but the controller must re-target through every
    ///    edge.
    #[must_use]
    pub fn cases(&self) -> Vec<FaultCase> {
        let dt = self.base.dt;
        let dur = SimDuration::from_secs(2_400);
        let load = |f: f64| Utilization::saturating_from_fraction(f);

        let crah = Scenario::new("crah-failure", dur, dt)
            .with_die_cap(Celsius::new(self.base.die_limit))
            .with_initial_load(load(0.65))
            .at(
                SimDuration::from_secs(300),
                ScenarioEvent::CrahCapacity(0.5),
            )
            .at(
                SimDuration::from_secs(1_500),
                ScenarioEvent::CrahCapacity(1.0),
            );
        let crah_free = Scenario::new("crah-failure", dur, dt)
            .with_die_cap(Celsius::new(self.base.die_limit))
            .with_initial_load(load(0.65));

        let mut fans = Scenario::new("fan-degradation", dur, dt)
            .with_die_cap(Celsius::new(self.base.die_limit))
            .with_initial_load(load(0.65));
        for server in 0..self.base.servers_per_rack.div_ceil(4) {
            fans = fans
                .at(
                    SimDuration::from_secs(300),
                    ScenarioEvent::FanFault {
                        rack: 0,
                        server,
                        fault: FanFault::Degraded { flow_scale: 0.55 },
                    },
                )
                .at(
                    SimDuration::from_secs(1_500),
                    ScenarioEvent::FanFault {
                        rack: 0,
                        server,
                        fault: FanFault::None,
                    },
                );
        }
        let fans_free = Scenario::new("fan-degradation", dur, dt)
            .with_die_cap(Celsius::new(self.base.die_limit))
            .with_initial_load(load(0.65));

        let spike = Scenario::new("load-spike", dur, dt)
            .with_die_cap(Celsius::new(self.base.die_limit))
            .with_initial_load(load(0.25))
            .at(
                SimDuration::from_secs(200),
                ScenarioEvent::CrahCapacity(0.9),
            )
            .at(
                SimDuration::from_secs(300),
                ScenarioEvent::Load(Utilization::FULL),
            )
            .at(
                SimDuration::from_secs(1_100),
                ScenarioEvent::CrahCapacity(1.0),
            )
            .at(
                SimDuration::from_secs(1_200),
                ScenarioEvent::Load(load(0.25)),
            )
            .at(
                SimDuration::from_secs(1_800),
                ScenarioEvent::Load(Utilization::FULL),
            );
        let spike_free = Scenario::new("load-spike", dur, dt)
            .with_die_cap(Celsius::new(self.base.die_limit))
            .with_initial_load(load(0.25))
            .at(
                SimDuration::from_secs(300),
                ScenarioEvent::Load(Utilization::FULL),
            )
            .at(
                SimDuration::from_secs(1_200),
                ScenarioEvent::Load(load(0.25)),
            )
            .at(
                SimDuration::from_secs(1_800),
                ScenarioEvent::Load(Utilization::FULL),
            );

        vec![
            FaultCase {
                script: crah,
                fault_free: Some(crah_free),
            },
            FaultCase {
                script: fans,
                fault_free: Some(fans_free),
            },
            FaultCase {
                script: spike,
                fault_free: Some(spike_free),
            },
        ]
    }

    fn fresh_room(&self) -> Room {
        let mut config = RoomConfig::new(
            self.base.rows,
            self.base.racks_per_row,
            self.base.servers_per_rack,
        );
        config.recirculation_fraction = self.beta;
        config.seed = self.base.seed;
        let mut room = Room::new(config).expect("fault-sweep room builds");
        room.apply(&ControlAction::hold().with_fan_floor(Rpm::new(self.base.fan_floor)))
            .expect("fan floor applies");
        room
    }

    /// Settles a fresh room at the script's initial load *under the
    /// controller* (so both reach their joint operating point), resets
    /// accounting, then drives the script through a [`ScenarioRunner`].
    fn run_script(
        &self,
        script: &Scenario,
        controller: &mut dyn RoomController,
    ) -> ScenarioOutcome {
        let mut room = self.fresh_room();
        controller.reset();
        let load = script.initial_load();
        room.run_controlled(controller, script.dt(), self.warmup_steps, |_| load)
            .expect("warmup runs");
        room.reset_accounting();
        ScenarioRunner::new(script.clone())
            .run(&mut room, controller)
            .expect("scripted run succeeds")
    }

    /// Runs one controller through one case: the faulted script, then
    /// (when the case has one) the fault-free twin for the energy
    /// overhead.
    fn run_one(
        &self,
        case: &FaultCase,
        controller: &mut dyn RoomController,
        name: &str,
    ) -> FaultRun {
        let start = Instant::now();
        let mut outcome = self.run_script(&case.script, controller);
        if let Some(twin) = &case.fault_free {
            let reference = self.run_script(twin, controller);
            outcome.set_energy_overhead_vs(&reference);
        }
        let wall_s = start.elapsed().as_secs_f64();
        let contained = outcome.stats.cap_violation_time <= self.transient_budget
            && outcome.final_max_die.degrees() <= self.base.die_limit;
        FaultRun {
            scenario: case.script.name().to_owned(),
            controller: name.to_owned(),
            outcome,
            contained,
            wall_s,
            server_steps: case.script.steps() * self.servers() as u64,
        }
    }

    /// Verifies the robustness substrate: drive the first case under
    /// the LUT controller, checkpoint mid-fault (halfway through the
    /// script, inside the derate window), restore into a fresh room and
    /// controller, and require the resumed run to finish bit-identically
    /// to an uninterrupted one.
    #[must_use]
    pub fn checkpoint_round_trip(&self) -> bool {
        let case = &self.cases()[0];
        let fingerprint = |room: &Room, outcome: &ScenarioOutcome| {
            (
                outcome.total_energy.value().to_bits(),
                outcome.final_max_die.degrees().to_bits(),
                outcome.stats.cap_violation_time,
                outcome.stats.decisions,
                (0..room.racks())
                    .map(|r| room.cold_aisle_temperature(r).degrees().to_bits())
                    .collect::<Vec<u64>>(),
            )
        };

        let mut room = self.fresh_room();
        let mut ctl = self.base.lut_controller();
        let mut runner = ScenarioRunner::new(case.script.clone());
        let reference = runner.run(&mut room, &mut ctl).expect("reference run");
        let reference = fingerprint(&room, &reference);

        let mid = case.script.steps() / 2;
        let mut room = self.fresh_room();
        let mut ctl = self.base.lut_controller();
        let mut runner = ScenarioRunner::new(case.script.clone());
        runner
            .run_steps(&mut room, &mut ctl, mid)
            .expect("pre-checkpoint run");
        let snap = runner.checkpoint(&mut room, &ctl);

        let mut resumed_room = self.fresh_room();
        let mut resumed_ctl = self.base.lut_controller();
        let mut resumed_runner = ScenarioRunner::new(case.script.clone());
        resumed_runner
            .restore(&mut resumed_room, &mut resumed_ctl, &snap)
            .expect("restore succeeds");
        let outcome = resumed_runner
            .run(&mut resumed_room, &mut resumed_ctl)
            .expect("resumed run");
        fingerprint(&resumed_room, &outcome) == reference
    }
}

/// One controller's ride through one scripted fault case.
#[derive(Debug, Clone)]
pub struct FaultRun {
    /// The script's name.
    pub scenario: String,
    /// Controller label (`fixed@24`, `LUT`, `MPC`).
    pub controller: String,
    /// The full scenario outcome (peak die, violation/recovery times,
    /// energies, energy overhead vs the fault-free twin).
    pub outcome: ScenarioOutcome,
    /// `true` when the excursion stayed within the transient budget
    /// and the run ended back under the cap.
    pub contained: bool,
    /// Wall-clock seconds (faulted script + fault-free twin).
    pub wall_s: f64,
    /// Server-steps of the faulted script.
    pub server_steps: u64,
}

impl FaultRun {
    /// `true` for the adaptive (gated) controllers.
    #[must_use]
    pub fn is_adaptive(&self) -> bool {
        !self.controller.starts_with("fixed")
    }
}

/// A full fault sweep: every case × controller, plus the checkpoint
/// bit-identity verdict.
#[derive(Debug, Clone)]
pub struct FaultSweep {
    /// Per-(case, controller) rides, in sweep order.
    pub runs: Vec<FaultRun>,
    /// Whether the mid-fault checkpoint/restore finished bit-identical
    /// to the uninterrupted run.
    pub checkpoint_bit_identical: bool,
    /// The transient budget the rides were judged against.
    pub transient_budget: SimDuration,
}

impl FaultSweep {
    /// `true` when LUT and MPC contained every fault (the fixed
    /// baseline is exempt).
    #[must_use]
    pub fn adaptives_contained(&self) -> bool {
        !self.runs.is_empty()
            && self
                .runs
                .iter()
                .filter(|r| r.is_adaptive())
                .all(|r| r.contained)
    }

    /// The acceptance verdict: adaptive containment *and* checkpoint
    /// bit-identity.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.adaptives_contained() && self.checkpoint_bit_identical
    }

    /// Renders the sweep as one `leakctl-perf/v1` measurement —
    /// servers-stepped/sec of the MPC rides (the heaviest path) with
    /// the per-ride verdicts as extras.
    #[must_use]
    pub fn to_perf_result(&self) -> PerfResult {
        let mpc_steps: u64 = self
            .runs
            .iter()
            .filter(|r| r.controller == "MPC")
            .map(|r| r.server_steps)
            .sum();
        let mpc_wall: f64 = self
            .runs
            .iter()
            .filter(|r| r.controller == "MPC")
            .map(|r| r.wall_s)
            .sum();
        let fmt_dur = |d: Option<SimDuration>| {
            d.map_or_else(|| "null".to_owned(), |d| format!("{:.1}", d.as_secs_f64()))
        };
        let per_run: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    "{{\"scenario\": \"{}\", \"controller\": \"{}\", \"peak_die_c\": {:.3}, \
                     \"final_die_c\": {:.3}, \"cap_violation_s\": {:.1}, \"recovery_s\": {}, \
                     \"energy_overhead_kwh\": {}, \"contained\": {}}}",
                    r.scenario,
                    r.controller,
                    r.outcome.stats.peak_die.degrees(),
                    r.outcome.final_max_die.degrees(),
                    r.outcome.stats.cap_violation_time.as_secs_f64(),
                    fmt_dur(r.outcome.stats.recovery_time),
                    r.outcome.stats.energy_overhead.map_or_else(
                        || "null".to_owned(),
                        |j| format!("{:.6}", j.as_kwh().value())
                    ),
                    r.contained,
                )
            })
            .collect();
        PerfResult {
            name: "faults_ctrl_servers_per_sec",
            steps: mpc_steps,
            wall_s: mpc_wall.max(1e-12),
            extra: vec![
                (
                    "faults_contained",
                    format!("{}", self.adaptives_contained()),
                ),
                (
                    "checkpoint_bit_identical",
                    format!("{}", self.checkpoint_bit_identical),
                ),
                (
                    "transient_budget_s",
                    format!("{:.0}", self.transient_budget.as_secs_f64()),
                ),
                ("per_run", format!("[{}]", per_run.join(", "))),
            ],
        }
    }
}

/// Runs the whole sweep: every case under the fixed baseline, LUT and
/// MPC (identical rooms, loads and seeds), then the checkpoint
/// round-trip.
#[must_use]
pub fn run_fault_sweep(spec: &FaultsScenario) -> FaultSweep {
    let mut runs = Vec::new();
    for case in &spec.cases() {
        let mut fixed = FixedSupplyController::new(Celsius::new(spec.fixed_supply));
        runs.push(spec.run_one(case, &mut fixed, &format!("fixed@{:.0}", spec.fixed_supply)));
        let mut lut = spec.base.lut_controller();
        runs.push(spec.run_one(case, &mut lut, "LUT"));
        let mut mpc = spec.base.mpc_controller();
        runs.push(spec.run_one(case, &mut mpc, "MPC"));
    }
    FaultSweep {
        runs,
        checkpoint_bit_identical: spec.checkpoint_round_trip(),
        transient_budget: spec.transient_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakctl_units::Joules;

    fn ride(controller: &str, violation_s: u64, final_die: f64, contained: bool) -> FaultRun {
        let mut outcome = {
            // A synthetic outcome shaped only for verdict plumbing.
            let spec = FaultsScenario::quick();
            let case = &spec.cases()[2];
            let mut ctl = FixedSupplyController::new(Celsius::new(18.0));
            let mut room = spec.fresh_room();
            let mut runner = ScenarioRunner::new(case.script.clone());
            runner.run_steps(&mut room, &mut ctl, 1).unwrap();
            runner.outcome(&room)
        };
        outcome.stats.cap_violation_time = SimDuration::from_secs(violation_s);
        outcome.final_max_die = Celsius::new(final_die);
        outcome.stats.energy_overhead = Some(Joules::new(3.6e6));
        FaultRun {
            scenario: "crah-failure".to_owned(),
            controller: controller.to_owned(),
            outcome,
            contained,
            wall_s: 0.1,
            server_steps: 1_000,
        }
    }

    #[test]
    fn scripts_are_well_formed() {
        for spec in [FaultsScenario::quick(), FaultsScenario::full()] {
            let cases = spec.cases();
            assert_eq!(cases.len(), 3);
            for case in &cases {
                assert!(case.script.steps() > 0);
                assert!(case.script.events() > 0, "{}", case.script.name());
                let twin = case.fault_free.as_ref().unwrap();
                assert_eq!(twin.name(), case.script.name());
                assert_eq!(twin.steps(), case.script.steps());
                assert!(twin.events() < case.script.events());
            }
            // The fan case degrades a quarter of the first rack.
            assert_eq!(
                cases[1].script.events(),
                2 * spec.base.servers_per_rack.div_ceil(4)
            );
        }
    }

    #[test]
    fn gate_exempts_the_fixed_baseline() {
        let sweep = FaultSweep {
            runs: vec![
                ride("fixed@24", 900, 88.0, false),
                ride("LUT", 30, 70.0, true),
                ride("MPC", 0, 69.0, true),
            ],
            checkpoint_bit_identical: true,
            transient_budget: SimDuration::from_secs(300),
        };
        assert!(sweep.adaptives_contained());
        assert!(sweep.accepted());

        let mut failed = sweep.clone();
        failed.runs[1].contained = false;
        assert!(!failed.adaptives_contained());
        assert!(!failed.accepted());

        let mut broken = sweep;
        broken.checkpoint_bit_identical = false;
        assert!(!broken.accepted());
    }

    #[test]
    fn sweep_renders_verdicts_and_per_run_extras() {
        let sweep = FaultSweep {
            runs: vec![ride("LUT", 30, 70.0, true), ride("MPC", 0, 69.0, true)],
            checkpoint_bit_identical: true,
            transient_budget: SimDuration::from_secs(300),
        };
        let result = sweep.to_perf_result();
        assert_eq!(result.name, "faults_ctrl_servers_per_sec");
        let extras: Vec<&str> = result.extra.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            extras,
            [
                "faults_contained",
                "checkpoint_bit_identical",
                "transient_budget_s",
                "per_run"
            ]
        );
        assert_eq!(result.extra[0].1, "true");
        let per_run = &result.extra[3].1;
        assert!(per_run.starts_with('['));
        assert!(per_run.contains("\"controller\": \"MPC\""));
        assert!(per_run.contains("\"energy_overhead_kwh\": 1.000000"));
        // Only MPC rides feed the throughput number.
        assert_eq!(result.steps, 1_000);
    }

    #[test]
    fn quick_sweep_contains_and_round_trips() {
        // The full acceptance run lives in the repro-faults binary; the
        // quick floor's slow thermals make this a fast smoke check of
        // the same plumbing end to end.
        let mut spec = FaultsScenario::quick();
        spec.warmup_steps = 60;
        let sweep = run_fault_sweep(&spec);
        assert_eq!(sweep.runs.len(), 9);
        assert!(sweep.checkpoint_bit_identical);
        assert!(sweep.adaptives_contained());
        for run in &sweep.runs {
            assert!(run.outcome.stats.decisions > 0);
            assert!(run.outcome.stats.peak_die.degrees() > 30.0);
            assert!(run.outcome.stats.energy_overhead.is_some());
        }
    }
}
