//! Set-point control sweep: the harness behind the `repro-setpoint`
//! figure.
//!
//! The paper's headline room-scale claim is that *adaptive* supply
//! set-point control — LUT or receding-horizon MPC — beats every fixed
//! set-point on total (IT + cooling) energy, because the energy-optimal
//! supply moves with the load: warm supplies win at light load (the
//! CRAH COP improves quadratically while the leakage slope is flat) but
//! the hot-spot cap forces cold supplies at full load. A fixed baseline
//! must stay feasible through the *worst* phase of the load schedule
//! and therefore overcools the rest of it.
//!
//! [`run_setpoint_sweep`] reproduces that figure: for each hot-aisle
//! recirculation fraction β it runs a grid of
//! [`FixedSupplyController`] baselines, keeps the cheapest *feasible*
//! one (hottest die under the cap for the whole measured run), then
//! runs [`LutSetPointController`] and [`MpcSetPointController`] on the
//! identical room and load schedule and reports the per-β energies and
//! savings. The `repro-setpoint` binary renders the result into
//! `BENCH_perf.json` and exits nonzero unless both adaptive controllers
//! strictly win at every β — the CI acceptance gate.

use std::time::Instant;

use leakctl::control::{
    ControlAction, FixedSupplyController, LutEntry, LutSetPointController, MpcSetPointController,
    RoomController, TileFlowBalancer,
};
use leakctl::prelude::{Server, ServerConfig};
use leakctl::room::{Room, RoomConfig};
use leakctl_units::{Celsius, Rpm, SimDuration, Utilization};

use crate::perf::PerfResult;
use crate::REPRO_SEED;

/// Scenario for one set-point sweep: floor geometry, the load
/// schedule, the fixed-baseline grid and the feasibility cap.
///
/// The load schedule is a square wave — `load_period` steps alternating
/// between full load and `low_load` — the regime where adaptive
/// control pays: a fixed supply must survive the full-load phase, an
/// adaptive one re-optimizes each phase.
#[derive(Debug, Clone)]
pub struct SetPointScenario {
    /// Rack rows on the floor.
    pub rows: usize,
    /// Racks per row.
    pub racks_per_row: usize,
    /// Servers per rack.
    pub servers_per_rack: usize,
    /// Hot-aisle recirculation fractions β to sweep.
    pub betas: Vec<f64>,
    /// Fixed-baseline supply grid (°C).
    pub fixed_supplies: Vec<f64>,
    /// Simulation step.
    pub dt: SimDuration,
    /// Settling steps before accounting starts (the room leaves its
    /// cold start and the controller reaches its operating point).
    pub warmup_steps: u64,
    /// Measured steps (the energies compared cover exactly these).
    pub steps: u64,
    /// Square-wave period of the load schedule, in steps.
    pub load_period: u64,
    /// Fraction of each period spent at full load (the rest runs at
    /// [`low_load`](Self::low_load)); realistic floors idle most of
    /// the time.
    pub high_fraction: f64,
    /// Activity fraction in the low-load part of the wave.
    pub low_load: f64,
    /// Hot-spot cap (°C): a run whose hottest die ever exceeds this
    /// during the measured phase is infeasible.
    pub die_limit: f64,
    /// Room-wide fan speed, pinned identically for every controller so
    /// the comparison isolates the supply/tile-flow policy.
    pub fan_floor: f64,
    /// Tile-flow balancer gain carried by the adaptive controllers
    /// (fraction of flow moved per °C of hot-spot imbalance).
    pub balancer_gain: f64,
    /// Room seed.
    pub seed: u64,
}

impl SetPointScenario {
    /// The full acceptance scenario: the 256-server repro room
    /// (2 rows × 4 racks × 32 servers, matching `repro-room`) over
    /// three recirculation fractions, one simulated hour measured
    /// after a ten-minute settling phase. Each load segment (ten
    /// minutes full, twenty low) is several thermal time constants
    /// long, so every phase reaches its steady hot spot and no
    /// baseline survives on transient slack.
    #[must_use]
    pub fn full() -> Self {
        Self {
            rows: 2,
            racks_per_row: 4,
            servers_per_rack: 32,
            betas: vec![0.05, 0.15, 0.3],
            fixed_supplies: (0..10).map(|i| 14.0 + 2.0 * f64::from(i)).collect(),
            dt: SimDuration::from_secs(1),
            warmup_steps: 600,
            steps: 3_600,
            load_period: 1_800,
            high_fraction: 1.0 / 3.0,
            low_load: 0.25,
            die_limit: 85.0,
            fan_floor: 1_800.0,
            balancer_gain: 0.02,
            seed: REPRO_SEED,
        }
    }

    /// A reduced scenario for smoke tests and the debug-mode tier-1
    /// suite: a 1 × 2 × 4 floor, shorter phases, the same physics.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            rows: 1,
            racks_per_row: 2,
            servers_per_rack: 4,
            betas: vec![0.05, 0.2, 0.35],
            fixed_supplies: (0..10).map(|i| 14.0 + 2.0 * f64::from(i)).collect(),
            dt: SimDuration::from_secs(1),
            warmup_steps: 300,
            steps: 3_600,
            load_period: 1_800,
            high_fraction: 1.0 / 3.0,
            low_load: 0.25,
            die_limit: 85.0,
            fan_floor: 1_800.0,
            balancer_gain: 0.02,
            seed: REPRO_SEED,
        }
    }

    /// Total server count.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.rows * self.racks_per_row * self.servers_per_rack
    }

    /// The square-wave load schedule: full load for the first
    /// [`high_fraction`](Self::high_fraction) of each period,
    /// [`low_load`](Self::low_load) for the rest.
    #[must_use]
    pub fn activity_at(&self, step: u64) -> Utilization {
        let period = self.load_period.max(1);
        let high = ((period as f64) * self.high_fraction).round().max(1.0) as u64;
        if step % period < high {
            Utilization::FULL
        } else {
            Utilization::saturating_from_fraction(self.low_load)
        }
    }

    /// The LUT controller this scenario evaluates, built the way the
    /// paper builds its tables: an offline profiling pass on the
    /// server twin. For each load band the twin runs the scenario's
    /// own duty cycle with the band's load as the high phase
    /// (`characterized_rise`), and the band's cold-aisle
    /// target is the hot-spot cap minus a safety margin, minus the
    /// profiled rise, minus a step-headroom reserve scaled by how far
    /// the load can still rise beyond the band (so a warm-idling floor
    /// survives an unforecast ramp to full load within the
    /// controller's reaction window). The supply range is clamped to
    /// the fixed grid's span (no actuator-range advantage over the
    /// baselines) and the scenario's tile-flow balancer rides along.
    #[must_use]
    pub fn lut_controller(&self) -> LutSetPointController {
        let lo = self
            .fixed_supplies
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .fixed_supplies
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let margin = 1.75;
        let step_headroom = 8.0;
        let entries = [0.35, 0.75, 1.0]
            .into_iter()
            .map(|band| {
                let load = Utilization::saturating_from_fraction(band);
                let rise = self.characterized_rise(load);
                let reserve = step_headroom * (1.0 - band);
                LutEntry {
                    max_load: load,
                    cold_aisle_target: Celsius::new(self.die_limit - margin - rise - reserve),
                }
            })
            .collect();
        LutSetPointController::new(entries)
            .with_supply_range(Celsius::new(lo), Celsius::new(hi))
            .with_balancer(TileFlowBalancer::new(self.balancer_gain))
            // React fast at load steps: an adaptive controller's hot
            // spot lives in the warm-idle → full transition, and every
            // second of decision lag rides the full-load heating slope.
            .with_period(SimDuration::from_secs(15))
    }

    /// Offline profiling: the realized die rise over the inlet when
    /// the server twin runs this scenario's duty cycle with `high` as
    /// the high-phase load, at the scenario fan floor and a constant
    /// inlet. A *transient* profile rather than an infinite-horizon
    /// steady solve, because the chassis carries a slow thermal mode
    /// (heatsink and board mass) that never settles inside the
    /// operating window — steady-state characterization overshoots the
    /// realized peak by the slow mode's share of the duty swing and
    /// would leave the table overcooling every band.
    fn characterized_rise(&self, high: Utilization) -> f64 {
        let config = ServerConfig::default();
        let ambient = config.ambient.degrees();
        let mut twin = Server::new(config, self.seed).expect("profiling twin builds");
        twin.command_fan_speed(Rpm::new(self.fan_floor));
        let mut rise = 0.0f64;
        for step in 0..self.warmup_steps + self.steps {
            let act = if self.activity_at(step).is_full() {
                high
            } else {
                self.activity_at(step)
            };
            twin.step(self.dt, act).expect("profiling twin steps");
            if step >= self.warmup_steps {
                rise = rise.max(twin.max_die_temperature().degrees() - ambient);
            }
        }
        rise
    }

    /// The MPC controller this scenario evaluates:
    /// [`MpcSetPointController`] planning on a 1 °C lattice spanning
    /// exactly the fixed grid's range — the same actuator range as the
    /// baselines, finer planning resolution (resolution is the
    /// controller, not the actuator) — against the scenario cap minus
    /// a 0.5 °C margin so its linear-response prediction error cannot
    /// push the real hot spot over the cap, plus the scenario's
    /// tile-flow balancer.
    #[must_use]
    pub fn mpc_controller(&self) -> MpcSetPointController {
        let lo = self
            .fixed_supplies
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .fixed_supplies
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let mut cfg = leakctl::control::MpcConfig::paper_default();
        cfg.candidates = (0..=(hi - lo).round() as u32)
            .map(|i| Celsius::new(lo + f64::from(i)))
            .collect();
        cfg.die_limit = Celsius::new(self.die_limit - 0.5);
        cfg.step_headroom = Celsius::new(7.0);
        cfg.period = SimDuration::from_secs(15);
        MpcSetPointController::new(cfg).with_balancer(TileFlowBalancer::new(self.balancer_gain))
    }

    /// Runs one controller on one β: settle, reset accounting, then
    /// drive the measured phase through [`Room::run_controlled`],
    /// sampling the hot spot between decisions.
    fn run_one(&self, beta: f64, controller: &mut dyn RoomController, name: &str) -> SetPointRun {
        let mut config = RoomConfig::new(self.rows, self.racks_per_row, self.servers_per_rack);
        config.recirculation_fraction = beta;
        config.seed = self.seed;
        let mut room = Room::new(config).expect("scenario room builds");
        room.apply(&ControlAction::hold().with_fan_floor(Rpm::new(self.fan_floor)))
            .expect("fan floor applies");
        controller.reset();

        let period_steps = (controller.decision_period().as_secs_f64() / self.dt.as_secs_f64())
            .round()
            .max(1.0) as u64;
        let drive = |room: &mut Room,
                     controller: &mut dyn RoomController,
                     offset: u64,
                     total: u64,
                     max_die: &mut f64|
         -> (u64, u64) {
            let (mut decisions, mut applied) = (0, 0);
            let mut done = 0;
            while done < total {
                let n = period_steps.min(total - done);
                let base = offset + done;
                let stats = room
                    .run_controlled(controller, self.dt, n, |i| self.activity_at(base + i))
                    .expect("controlled run succeeds");
                decisions += stats.decisions;
                applied += stats.applied;
                done += n;
                *max_die = max_die.max(room.max_die_temperature().degrees());
            }
            (decisions, applied)
        };

        let mut settle_die = 0.0;
        drive(&mut room, controller, 0, self.warmup_steps, &mut settle_die);
        room.reset_accounting();
        let mut max_die = f64::NEG_INFINITY;
        let start = Instant::now();
        let (decisions, applied) = drive(
            &mut room,
            controller,
            self.warmup_steps,
            self.steps,
            &mut max_die,
        );
        let wall_s = start.elapsed().as_secs_f64();

        SetPointRun {
            name: name.to_owned(),
            total_kwh: room.total_energy().as_kwh().value(),
            it_kwh: room.it_energy().as_kwh().value(),
            cooling_kwh: room.cooling_energy().as_kwh().value(),
            max_die_c: max_die,
            feasible: max_die <= self.die_limit,
            decisions,
            applied,
            wall_s,
            server_steps: self.steps * self.servers() as u64,
        }
    }
}

/// Outcome of one controlled run at one β.
#[derive(Debug, Clone)]
pub struct SetPointRun {
    /// Controller label (`fixed@20`, `LUT`, `MPC`).
    pub name: String,
    /// Total (IT + cooling) energy over the measured phase, kWh.
    pub total_kwh: f64,
    /// IT (server + fan) energy, kWh.
    pub it_kwh: f64,
    /// CRAH cooling energy, kWh.
    pub cooling_kwh: f64,
    /// Hottest die seen during the measured phase, °C.
    pub max_die_c: f64,
    /// `true` when the hot spot stayed under the scenario cap.
    pub feasible: bool,
    /// Controller consultations over the measured phase.
    pub decisions: u64,
    /// Decisions that commanded a change.
    pub applied: u64,
    /// Wall-clock seconds of the measured phase.
    pub wall_s: f64,
    /// Server-steps executed in the measured phase.
    pub server_steps: u64,
}

/// All runs at one recirculation fraction.
#[derive(Debug, Clone)]
pub struct BetaSetPointResult {
    /// The recirculation fraction β.
    pub beta: f64,
    /// The fixed-supply grid, in scenario order.
    pub fixed: Vec<SetPointRun>,
    /// The LUT controller's run.
    pub lut: SetPointRun,
    /// The MPC controller's run.
    pub mpc: SetPointRun,
}

impl BetaSetPointResult {
    /// The cheapest *feasible* fixed baseline — what the adaptive
    /// controllers must strictly beat. `None` when every fixed supply
    /// on the grid violates the hot-spot cap.
    #[must_use]
    pub fn best_fixed(&self) -> Option<&SetPointRun> {
        self.fixed.iter().filter(|r| r.feasible).min_by(|a, b| {
            a.total_kwh
                .partial_cmp(&b.total_kwh)
                .expect("energies are finite")
        })
    }

    /// Percent energy saved by `run` against the best feasible fixed
    /// baseline (negative when it loses); `None` without a feasible
    /// baseline.
    #[must_use]
    pub fn savings_pct(&self, run: &SetPointRun) -> Option<f64> {
        self.best_fixed()
            .map(|best| (1.0 - run.total_kwh / best.total_kwh) * 100.0)
    }

    /// `true` when both adaptive controllers are feasible and strictly
    /// cheaper than the best feasible fixed baseline.
    #[must_use]
    pub fn adaptive_strictly_wins(&self) -> bool {
        self.best_fixed().is_some_and(|best| {
            self.lut.feasible
                && self.mpc.feasible
                && self.lut.total_kwh < best.total_kwh
                && self.mpc.total_kwh < best.total_kwh
        })
    }
}

/// A full sweep: one [`BetaSetPointResult`] per recirculation fraction.
#[derive(Debug, Clone)]
pub struct SetPointSweep {
    /// Per-β results, in scenario order.
    pub betas: Vec<BetaSetPointResult>,
}

impl SetPointSweep {
    /// The worst (smallest) adaptive saving across every β and both
    /// controllers — the single number the CI gate pins. `None` when
    /// some β had no feasible fixed baseline.
    #[must_use]
    pub fn min_savings_pct(&self) -> Option<f64> {
        let mut min = f64::INFINITY;
        for b in &self.betas {
            let lut = b.savings_pct(&b.lut)?;
            let mpc = b.savings_pct(&b.mpc)?;
            min = min.min(lut).min(mpc);
        }
        self.betas.is_empty().then_some(0.0).or(Some(min))
    }

    /// `true` when LUT and MPC strictly beat the best feasible fixed
    /// baseline at *every* β — the acceptance criterion.
    #[must_use]
    pub fn strictly_wins(&self) -> bool {
        !self.betas.is_empty()
            && self
                .betas
                .iter()
                .all(BetaSetPointResult::adaptive_strictly_wins)
    }

    /// Renders the sweep as one `leakctl-perf/v1` measurement:
    /// steps/sec of the MPC-controlled runs (the heaviest control-loop
    /// path, carried by the `repro-perf-diff` gate) with the savings
    /// and per-β energies as extras.
    #[must_use]
    pub fn to_perf_result(&self) -> PerfResult {
        let mpc_steps: u64 = self.betas.iter().map(|b| b.mpc.server_steps).sum();
        let mpc_wall: f64 = self.betas.iter().map(|b| b.mpc.wall_s).sum();
        let fmt_opt = |v: Option<f64>| v.map_or_else(|| "null".to_owned(), |v| format!("{v:.4}"));
        let per_beta: Vec<String> = self
            .betas
            .iter()
            .map(|b| {
                let best = b.best_fixed();
                format!(
                    "{{\"beta\": {:.3}, \"best_fixed\": {}, \"best_fixed_kwh\": {}, \
                     \"lut_kwh\": {:.6}, \"mpc_kwh\": {:.6}, \"lut_savings_pct\": {}, \
                     \"mpc_savings_pct\": {}, \"lut_max_die_c\": {:.3}, \"mpc_max_die_c\": {:.3}}}",
                    b.beta,
                    best.map_or_else(|| "null".to_owned(), |r| format!("\"{}\"", r.name)),
                    fmt_opt(best.map(|r| r.total_kwh).map(|v| (v * 1e6).round() / 1e6)),
                    b.lut.total_kwh,
                    b.mpc.total_kwh,
                    fmt_opt(b.savings_pct(&b.lut)),
                    fmt_opt(b.savings_pct(&b.mpc)),
                    b.lut.max_die_c,
                    b.mpc.max_die_c,
                )
            })
            .collect();
        PerfResult {
            name: "setpoint_ctrl_servers_per_sec",
            steps: mpc_steps,
            wall_s: mpc_wall.max(1e-12),
            extra: vec![
                ("setpoint_savings_pct", fmt_opt(self.min_savings_pct())),
                ("setpoint_strict_win", format!("{}", self.strictly_wins())),
                ("per_beta", format!("[{}]", per_beta.join(", "))),
            ],
        }
    }
}

/// Runs the whole sweep: for each β, the fixed-supply grid, then LUT,
/// then MPC, all on identical rooms and load schedules.
#[must_use]
pub fn run_setpoint_sweep(scenario: &SetPointScenario) -> SetPointSweep {
    let betas = scenario
        .betas
        .iter()
        .map(|&beta| {
            let fixed = scenario
                .fixed_supplies
                .iter()
                .map(|&supply| {
                    let mut ctl = FixedSupplyController::new(Celsius::new(supply));
                    scenario.run_one(beta, &mut ctl, &format!("fixed@{supply:.0}"))
                })
                .collect();
            let mut lut = scenario.lut_controller();
            let lut = scenario.run_one(beta, &mut lut, "LUT");
            let mut mpc = scenario.mpc_controller();
            let mpc = scenario.run_one(beta, &mut mpc, "MPC");
            BetaSetPointResult {
                beta,
                fixed,
                lut,
                mpc,
            }
        })
        .collect();
    SetPointSweep { betas }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(name: &str, total_kwh: f64, max_die_c: f64, feasible: bool) -> SetPointRun {
        SetPointRun {
            name: name.to_owned(),
            total_kwh,
            it_kwh: total_kwh * 0.8,
            cooling_kwh: total_kwh * 0.2,
            max_die_c,
            feasible,
            decisions: 10,
            applied: 5,
            wall_s: 0.1,
            server_steps: 1_000,
        }
    }

    fn beta_result(lut: SetPointRun, mpc: SetPointRun) -> BetaSetPointResult {
        BetaSetPointResult {
            beta: 0.2,
            fixed: vec![
                run("fixed@22", 10.0, 80.0, true),
                run("fixed@24", 9.0, 83.0, true),
                run("fixed@26", 8.0, 87.0, false),
            ],
            lut,
            mpc,
        }
    }

    #[test]
    fn the_load_wave_spends_high_fraction_at_full() {
        let s = SetPointScenario::quick();
        let period = s.load_period;
        let high = (period as f64 * s.high_fraction).round() as u64;
        assert!(s.activity_at(0).is_full());
        assert!(s.activity_at(high - 1).is_full());
        assert!(!s.activity_at(high).is_full());
        assert!(!s.activity_at(period - 1).is_full());
        assert!(s.activity_at(period).is_full());
        let full_steps = (0..period).filter(|&i| s.activity_at(i).is_full()).count();
        assert_eq!(full_steps as u64, high);
    }

    #[test]
    fn characterized_lut_targets_cool_with_load() {
        let s = SetPointScenario::quick();
        let lut = s.lut_controller();
        let light = lut.target_for(Utilization::saturating_from_fraction(0.2));
        let mid = lut.target_for(Utilization::saturating_from_fraction(0.6));
        let full = lut.target_for(Utilization::FULL);
        assert!(
            light.degrees() > mid.degrees() && mid.degrees() > full.degrees(),
            "targets must cool as load rises: {light:?} / {mid:?} / {full:?}"
        );
        // The full-load band keeps the cap minus margin minus the
        // profiled rise — it must leave a usable cold-aisle target.
        assert!(full.degrees() > 15.0 && full.degrees() < s.die_limit);
    }

    #[test]
    fn mpc_plans_on_a_one_degree_lattice_spanning_the_fixed_grid() {
        let s = SetPointScenario::quick();
        let lo = s
            .fixed_supplies
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = s
            .fixed_supplies
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).round() as usize;
        // Rebuild the lattice the same way the controller config does.
        let mpc = s.mpc_controller();
        assert_eq!(mpc.name(), "MPC");
        assert_eq!(span + 1, 19, "quick grid spans 14..32");
    }

    #[test]
    fn best_fixed_skips_infeasible_runs() {
        let b = beta_result(run("LUT", 8.5, 84.0, true), run("MPC", 8.4, 84.0, true));
        // fixed@26 is cheapest but infeasible; fixed@24 wins.
        assert_eq!(b.best_fixed().unwrap().name, "fixed@24");
        let savings = b.savings_pct(&b.lut).unwrap();
        assert!((savings - (1.0 - 8.5 / 9.0) * 100.0).abs() < 1e-9);
        assert!(b.adaptive_strictly_wins());
    }

    #[test]
    fn strict_win_requires_feasibility_and_lower_energy() {
        let infeasible = beta_result(run("LUT", 8.5, 86.0, false), run("MPC", 8.4, 84.0, true));
        assert!(!infeasible.adaptive_strictly_wins());
        let tie = beta_result(run("LUT", 9.0, 84.0, true), run("MPC", 8.4, 84.0, true));
        assert!(!tie.adaptive_strictly_wins());
    }

    #[test]
    fn sweep_renders_savings_and_per_beta_extras() {
        let sweep = SetPointSweep {
            betas: vec![beta_result(
                run("LUT", 8.5, 84.0, true),
                run("MPC", 8.4, 84.0, true),
            )],
        };
        assert!(sweep.strictly_wins());
        let min = sweep.min_savings_pct().unwrap();
        // MPC saves more than LUT; the pinned number is the worst case.
        assert!((min - (1.0 - 8.5 / 9.0) * 100.0).abs() < 1e-9);
        let result = sweep.to_perf_result();
        assert_eq!(result.name, "setpoint_ctrl_servers_per_sec");
        let extras: Vec<&str> = result.extra.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            extras,
            ["setpoint_savings_pct", "setpoint_strict_win", "per_beta"]
        );
        let per_beta = &result.extra[2].1;
        assert!(per_beta.starts_with('[') && per_beta.contains("\"best_fixed\": \"fixed@24\""));
    }
}
