//! Thermal-aware scheduling comparison: the harness behind the
//! `repro-sched` figure.
//!
//! The set-point sweep ([`crate::setpoint`]) showed that *cooling*
//! adapts to the load; this harness shows that *placement* is a second,
//! independent lever. The room's tile-flow split is geometric — racks
//! far from the CRAH wall are inlet-starved — so a thermally blind
//! scheduler (round-robin) pushes as much work into the starved corners
//! as into the well-fed front row. The hottest rack then pins two costs
//! at once: its dies run up the exponential leakage curve, and its
//! inlet lift forces the supply set-point colder for the whole room
//! (worse CRAH COP). A thermal-aware policy places work where the
//! marginal leakage is lowest, flattening the hot spot, which the LUT
//! controller converts into a warmer supply and a cheaper bill.
//!
//! [`run_sched_comparison`] drives the three `leakctl::schedule`
//! policies — round-robin, thermal-greedy, and the local-search
//! metaheuristic — through identical rooms, job streams and LUT
//! cooling controllers, and reports total energy and peak die
//! temperature per policy. The `repro-sched` binary renders the result
//! into `BENCH_perf.json` and exits nonzero unless *both* thermal-aware
//! policies strictly beat round-robin on energy at equal-or-lower peak
//! die temperature — the CI acceptance gate.

use std::time::Instant;

use leakctl::control::{ControlAction, LutEntry, LutSetPointController};
use leakctl::prelude::{Server, ServerConfig};
use leakctl::room::{Room, RoomConfig};
use leakctl::schedule::{
    JobStream, JobStreamConfig, LocalSearchScheduler, RoomScheduler, RoundRobinScheduler,
    ScheduledLoop, ThermalGreedyConfig, ThermalGreedyScheduler,
};
use leakctl_units::{Celsius, Rpm, SimDuration, Utilization, Watts};

use crate::perf::PerfResult;
use crate::REPRO_SEED;

/// Scenario for one scheduling comparison: floor geometry, the job
/// stream, the shared LUT cooling controller, and the feasibility cap.
#[derive(Debug, Clone)]
pub struct SchedScenario {
    /// Rack rows on the floor (rows far from the CRAH wall are
    /// inlet-starved — the heterogeneity the schedulers compete on).
    pub rows: usize,
    /// Racks per row.
    pub racks_per_row: usize,
    /// Servers per rack.
    pub servers_per_rack: usize,
    /// Hot-aisle recirculation fraction β.
    pub recirculation: f64,
    /// Simulation step.
    pub dt: SimDuration,
    /// Settling steps before accounting starts (the floor fills to its
    /// steady occupancy and the controller reaches its operating
    /// point).
    pub warmup_steps: u64,
    /// Measured steps (the energies compared cover exactly these).
    pub steps: u64,
    /// Mean job arrival rate, jobs per simulated second.
    pub arrival_rate: f64,
    /// Mean job duration.
    pub mean_duration: SimDuration,
    /// Shortest possible job.
    pub min_duration: SimDuration,
    /// Per-job utilization range (uniform).
    pub utilization_lo: f64,
    /// Upper utilization bound.
    pub utilization_hi: f64,
    /// Scheduler decision period.
    pub sched_period: SimDuration,
    /// Hot-spot cap (°C): a run whose hottest die ever exceeds this
    /// during the measured phase is infeasible.
    pub die_limit: f64,
    /// Room-wide fan speed, pinned identically for every policy so the
    /// comparison isolates placement.
    pub fan_floor: f64,
    /// Per-rack power budget handed to the thermal-aware policies
    /// (watts per server; the greedy feasibility check multiplies by
    /// the rack's server count).
    pub budget_per_server: f64,
    /// Room and job-stream seed.
    pub seed: u64,
}

impl SchedScenario {
    /// The full acceptance scenario: an 8 × 8 × 48 floor
    /// (3072 servers), one simulated hour measured after a ten-minute
    /// fill phase, with Poisson arrivals sized for ~60 % steady slot
    /// occupancy (`λ · mean_duration ≈ 1800 resident jobs`).
    #[must_use]
    pub fn full() -> Self {
        Self {
            rows: 8,
            racks_per_row: 8,
            servers_per_rack: 48,
            recirculation: 0.15,
            dt: SimDuration::from_secs(1),
            warmup_steps: 600,
            steps: 3_600,
            arrival_rate: 3.0,
            mean_duration: SimDuration::from_mins(10),
            min_duration: SimDuration::from_mins(1),
            utilization_lo: 0.5,
            utilization_hi: 1.0,
            sched_period: SimDuration::from_secs(15),
            die_limit: 85.0,
            fan_floor: 1_800.0,
            budget_per_server: 600.0,
            seed: REPRO_SEED,
        }
    }

    /// A reduced scenario for smoke tests and the debug-mode tier-1
    /// suite: a 2 × 2 × 4 floor (16 servers — row 1 still sits off the
    /// CRAH wall, so the heterogeneity the policies compete on
    /// survives), shorter phases, the same physics.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            rows: 2,
            racks_per_row: 2,
            servers_per_rack: 4,
            recirculation: 0.15,
            dt: SimDuration::from_secs(1),
            warmup_steps: 300,
            steps: 1_800,
            arrival_rate: 0.04,
            mean_duration: SimDuration::from_mins(5),
            min_duration: SimDuration::from_secs(30),
            utilization_lo: 0.5,
            utilization_hi: 1.0,
            sched_period: SimDuration::from_secs(15),
            die_limit: 85.0,
            fan_floor: 1_800.0,
            budget_per_server: 600.0,
            seed: REPRO_SEED,
        }
    }

    /// Total server count.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.rows * self.racks_per_row * self.servers_per_rack
    }

    /// The job-stream generator config every policy replays (same
    /// seed → bit-identical trace per policy).
    #[must_use]
    pub fn stream_config(&self) -> JobStreamConfig {
        JobStreamConfig {
            arrival_rate: self.arrival_rate,
            mean_duration: self.mean_duration,
            min_duration: self.min_duration,
            utilization_lo: self.utilization_lo,
            utilization_hi: self.utilization_hi,
            seed: self.seed,
        }
    }

    /// The shared thermal-policy tuning: the projected die rise per
    /// unit of rack utilization is the twin-profiled idle→full die
    /// *swing* at the scenario fan floor (the marginal response —
    /// rise-over-inlet would fold the inlet itself into every
    /// projection and make the policy refuse feasible racks), and each
    /// rack's power budget is
    /// [`budget_per_server`](Self::budget_per_server) × servers.
    #[must_use]
    pub fn greedy_config(&self) -> ThermalGreedyConfig {
        let mut cfg = ThermalGreedyConfig::paper_default();
        cfg.period = self.sched_period;
        cfg.die_rise =
            self.characterized_rise(Utilization::FULL) - self.characterized_rise(Utilization::IDLE);
        cfg.power_budget = Some(Watts::new(
            self.budget_per_server * self.servers_per_rack as f64,
        ));
        cfg
    }

    /// The LUT cooling controller every policy runs under, built like
    /// the set-point sweep's: per load band, aim the cold aisles at the
    /// cap minus a safety margin, minus the twin-profiled die rise,
    /// minus a headroom reserve that shrinks as the band approaches
    /// full load (job churn can raise a rack's load between decisions).
    #[must_use]
    pub fn lut_controller(&self) -> LutSetPointController {
        let margin = 2.0;
        let step_headroom = 6.0;
        let entries = [0.35, 0.75, 1.0]
            .into_iter()
            .map(|band| {
                let load = Utilization::saturating_from_fraction(band);
                let rise = self.characterized_rise(load);
                let reserve = step_headroom * (1.0 - band);
                LutEntry {
                    max_load: load,
                    cold_aisle_target: Celsius::new(self.die_limit - margin - rise - reserve),
                }
            })
            .collect();
        LutSetPointController::new(entries)
            .with_supply_range(Celsius::new(14.0), Celsius::new(32.0))
            .with_period(SimDuration::from_secs(15))
    }

    /// Offline profiling: the steady die rise over the inlet when the
    /// server twin holds `load` at the scenario fan floor — the
    /// first-order thermal response both the LUT bands and the greedy
    /// cost model plan with.
    fn characterized_rise(&self, load: Utilization) -> f64 {
        let config = ServerConfig::default();
        let ambient = config.ambient.degrees();
        let mut twin = Server::new(config, self.seed).expect("profiling twin builds");
        twin.command_fan_speed(Rpm::new(self.fan_floor));
        let mut rise = 0.0f64;
        for step in 0..self.warmup_steps + self.steps {
            twin.step(self.dt, load).expect("profiling twin steps");
            if step >= self.warmup_steps {
                rise = rise.max(twin.max_die_temperature().degrees() - ambient);
            }
        }
        rise
    }

    /// Runs one policy: identical room, fan floor, job stream and LUT
    /// controller; fill during warm-up, then reset accounting and peak
    /// tracking and measure.
    fn run_policy(&self, scheduler: &mut dyn RoomScheduler, name: &str) -> SchedRun {
        let mut config = RoomConfig::new(self.rows, self.racks_per_row, self.servers_per_rack);
        config.recirculation_fraction = self.recirculation;
        config.die_limit = Celsius::new(self.die_limit);
        config.seed = self.seed;
        let mut room = Room::new(config).expect("scenario room builds");
        room.apply(&ControlAction::hold().with_fan_floor(Rpm::new(self.fan_floor)))
            .expect("fan floor applies");
        let mut controller = self.lut_controller();
        scheduler.reset();

        let stream = JobStream::generate(self.stream_config()).expect("stream config is valid");
        let mut the_loop = ScheduledLoop::new(stream);
        the_loop
            .run(
                &mut room,
                scheduler,
                &mut controller,
                self.dt,
                self.warmup_steps,
            )
            .expect("warm-up runs");
        room.reset_accounting();
        the_loop.reset_peaks();
        let start = Instant::now();
        let stats = the_loop
            .run(&mut room, scheduler, &mut controller, self.dt, self.steps)
            .expect("measured phase runs");
        let wall_s = start.elapsed().as_secs_f64();

        let max_die_c = stats.peak_die.degrees();
        SchedRun {
            name: name.to_owned(),
            total_kwh: room.total_energy().as_kwh().value(),
            it_kwh: room.it_energy().as_kwh().value(),
            cooling_kwh: room.cooling_energy().as_kwh().value(),
            max_die_c,
            feasible: max_die_c <= self.die_limit,
            placed: stats.placed,
            completed: stats.completed,
            rejected: stats.rejected,
            peak_pending: stats.peak_pending,
            wall_s,
            server_steps: self.steps * self.servers() as u64,
        }
    }
}

/// Outcome of one scheduled run under one policy.
#[derive(Debug, Clone)]
pub struct SchedRun {
    /// Policy label (`round-robin`, `thermal-greedy`, `local-search`).
    pub name: String,
    /// Total (IT + cooling) energy over the measured phase, kWh.
    pub total_kwh: f64,
    /// IT (server + fan) energy, kWh.
    pub it_kwh: f64,
    /// CRAH cooling energy, kWh.
    pub cooling_kwh: f64,
    /// Hottest die seen during the measured phase, °C.
    pub max_die_c: f64,
    /// `true` when the hot spot stayed under the scenario cap.
    pub feasible: bool,
    /// Jobs placed over the whole run (fill + measured).
    pub placed: u64,
    /// Jobs completed over the whole run.
    pub completed: u64,
    /// Infeasible assignments rejected by the loop.
    pub rejected: u64,
    /// Deepest pending queue during the measured phase.
    pub peak_pending: usize,
    /// Wall-clock seconds of the measured phase.
    pub wall_s: f64,
    /// Server-steps executed in the measured phase.
    pub server_steps: u64,
}

/// The three policies on identical rooms and job streams.
#[derive(Debug, Clone)]
pub struct SchedComparison {
    /// The thermally blind baseline.
    pub round_robin: SchedRun,
    /// Coldest-first marginal-leakage placement.
    pub greedy: SchedRun,
    /// Local-search refinement of the greedy seed.
    pub local_search: SchedRun,
}

impl SchedComparison {
    /// Percent energy saved by `run` against round-robin (negative
    /// when it loses).
    #[must_use]
    pub fn savings_pct(&self, run: &SchedRun) -> f64 {
        (1.0 - run.total_kwh / self.round_robin.total_kwh) * 100.0
    }

    /// The worst (smallest) saving across both thermal-aware policies
    /// — the single number the CI gate pins.
    #[must_use]
    pub fn min_savings_pct(&self) -> f64 {
        self.savings_pct(&self.greedy)
            .min(self.savings_pct(&self.local_search))
    }

    /// The worst (largest) peak-die delta of the thermal-aware
    /// policies against round-robin, °C; the gate requires ≤ 0.
    #[must_use]
    pub fn peak_die_delta(&self) -> f64 {
        (self.greedy.max_die_c - self.round_robin.max_die_c)
            .max(self.local_search.max_die_c - self.round_robin.max_die_c)
    }

    /// The acceptance criterion: both thermal-aware policies feasible,
    /// strictly cheaper than round-robin, at equal-or-lower peak die
    /// temperature.
    #[must_use]
    pub fn strictly_wins(&self) -> bool {
        self.greedy.feasible
            && self.local_search.feasible
            && self.greedy.total_kwh < self.round_robin.total_kwh
            && self.local_search.total_kwh < self.round_robin.total_kwh
            && self.peak_die_delta() <= 0.0
    }

    /// Renders the comparison as one `leakctl-perf/v1` measurement:
    /// scheduled-loop server-steps/sec across all three policies, with
    /// the savings, the peak-die delta and the per-policy energies as
    /// extras.
    #[must_use]
    pub fn to_perf_result(&self) -> PerfResult {
        let runs = [&self.round_robin, &self.greedy, &self.local_search];
        let steps: u64 = runs.iter().map(|r| r.server_steps).sum();
        let wall: f64 = runs.iter().map(|r| r.wall_s).sum();
        let per_policy: Vec<String> = runs
            .iter()
            .map(|r| {
                format!(
                    "{{\"policy\": \"{}\", \"total_kwh\": {:.6}, \"it_kwh\": {:.6}, \
                     \"cooling_kwh\": {:.6}, \"max_die_c\": {:.3}, \"placed\": {}, \
                     \"completed\": {}, \"peak_pending\": {}}}",
                    r.name,
                    r.total_kwh,
                    r.it_kwh,
                    r.cooling_kwh,
                    r.max_die_c,
                    r.placed,
                    r.completed,
                    r.peak_pending,
                )
            })
            .collect();
        PerfResult {
            name: "sched_servers_per_sec",
            steps,
            wall_s: wall.max(1e-12),
            extra: vec![
                (
                    "sched_savings_pct",
                    format!("{:.4}", self.min_savings_pct()),
                ),
                (
                    "sched_peak_die_delta",
                    format!("{:.4}", self.peak_die_delta()),
                ),
                ("sched_strict_win", format!("{}", self.strictly_wins())),
                ("per_policy", format!("[{}]", per_policy.join(", "))),
            ],
        }
    }
}

/// Runs the whole comparison: round-robin, thermal-greedy and the
/// local-search metaheuristic on identical rooms, fan floors, job
/// streams and LUT cooling controllers.
#[must_use]
pub fn run_sched_comparison(scenario: &SchedScenario) -> SchedComparison {
    let mut rr = RoundRobinScheduler::new(scenario.sched_period);
    let round_robin = scenario.run_policy(&mut rr, "round-robin");
    let cfg = scenario.greedy_config();
    let mut greedy = ThermalGreedyScheduler::new(cfg.clone());
    let greedy = scenario.run_policy(&mut greedy, "thermal-greedy");
    let mut meta = LocalSearchScheduler::new(cfg);
    let local_search = scenario.run_policy(&mut meta, "local-search");
    SchedComparison {
        round_robin,
        greedy,
        local_search,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(name: &str, total_kwh: f64, max_die_c: f64, feasible: bool) -> SchedRun {
        SchedRun {
            name: name.to_owned(),
            total_kwh,
            it_kwh: total_kwh * 0.8,
            cooling_kwh: total_kwh * 0.2,
            max_die_c,
            feasible,
            placed: 100,
            completed: 90,
            rejected: 0,
            peak_pending: 3,
            wall_s: 0.1,
            server_steps: 1_000,
        }
    }

    fn comparison(greedy: SchedRun, local_search: SchedRun) -> SchedComparison {
        SchedComparison {
            round_robin: run("round-robin", 10.0, 80.0, true),
            greedy,
            local_search,
        }
    }

    #[test]
    fn savings_and_deltas_are_measured_against_round_robin() {
        let c = comparison(
            run("thermal-greedy", 9.5, 78.0, true),
            run("local-search", 9.4, 77.0, true),
        );
        assert!((c.savings_pct(&c.greedy) - 5.0).abs() < 1e-9);
        assert!((c.min_savings_pct() - 5.0).abs() < 1e-9);
        assert!((c.peak_die_delta() - (-2.0)).abs() < 1e-9);
        assert!(c.strictly_wins());
    }

    #[test]
    fn strict_win_requires_energy_and_temperature() {
        // Cheaper but hotter: no win.
        let hotter = comparison(
            run("thermal-greedy", 9.5, 81.0, true),
            run("local-search", 9.4, 77.0, true),
        );
        assert!(!hotter.strictly_wins());
        // Cooler but not cheaper: no win.
        let tie = comparison(
            run("thermal-greedy", 10.0, 78.0, true),
            run("local-search", 9.4, 77.0, true),
        );
        assert!(!tie.strictly_wins());
        // Infeasible: no win.
        let infeasible = comparison(
            run("thermal-greedy", 9.5, 86.0, false),
            run("local-search", 9.4, 77.0, true),
        );
        assert!(!infeasible.strictly_wins());
    }

    #[test]
    fn comparison_renders_the_gate_extras() {
        let c = comparison(
            run("thermal-greedy", 9.5, 78.0, true),
            run("local-search", 9.4, 77.0, true),
        );
        let result = c.to_perf_result();
        assert_eq!(result.name, "sched_servers_per_sec");
        assert_eq!(result.steps, 3_000);
        let extras: Vec<&str> = result.extra.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            extras,
            [
                "sched_savings_pct",
                "sched_peak_die_delta",
                "sched_strict_win",
                "per_policy"
            ]
        );
        assert!(result.extra[3].1.contains("\"policy\": \"round-robin\""));
    }

    #[test]
    fn quick_scenario_is_well_formed() {
        let s = SchedScenario::quick();
        assert_eq!(s.servers(), 16);
        assert!(JobStream::generate(s.stream_config()).is_ok());
        let lut = s.lut_controller();
        let light = lut.target_for(Utilization::saturating_from_fraction(0.2));
        let full = lut.target_for(Utilization::FULL);
        assert!(
            light.degrees() > full.degrees(),
            "targets must cool as load rises: {light:?} / {full:?}"
        );
    }

    #[test]
    fn tiny_comparison_runs_end_to_end() {
        // A miniature floor just to exercise the full run path; the
        // acceptance gate itself runs on the repro scenario.
        let mut s = SchedScenario::quick();
        s.warmup_steps = 60;
        s.steps = 240;
        let c = run_sched_comparison(&s);
        for r in [&c.round_robin, &c.greedy, &c.local_search] {
            assert!(r.total_kwh > 0.0, "{} accounted energy", r.name);
            assert!(r.placed > 0, "{} placed jobs", r.name);
            assert!(r.max_die_c > 20.0, "{} tracked a peak", r.name);
        }
    }
}
