//! Controller shootout: reproduce the paper's Table I and also evaluate
//! the PID extension controller on the same four workloads.
//!
//! ```text
//! cargo run --release -p leakctl --example controller_shootout
//! ```

use leakctl::prelude::*;
use leakctl::{generate_table1, RunOptions, Table1Options};
use leakctl_workload::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the LUT from a quick characterization...");
    let data = characterize(&CharacterizeOptions::quick(), 42)?;
    let fitted = fit_models(&data)?;
    let lut = build_lut_from_characterization(&data, &fitted)?;

    println!("running Table I (4 tests x 3 controllers, 80 min each)...");
    let run = RunOptions {
        record: false,
        ..RunOptions::default()
    };
    let options = Table1Options {
        run: run.clone(),
        seed: 42,
        lut: lut.clone(),
    };
    let table = generate_table1(&options)?;
    println!("\n{}", table.render());

    // Extension: the PID controller on the same tests.
    println!("extension: PID controller (not part of the paper's Table I):");
    for (name, profile) in suite::all(42) {
        let mut pid = PidController::paper_tuned();
        let outcome = leakctl::run_experiment(&run, profile, &mut pid, 42)?;
        let m = outcome.metrics;
        let base = table
            .row(name, "Default")
            .expect("default row exists")
            .energy
            .value();
        let lut_e = table
            .row(name, "LUT")
            .expect("LUT row exists")
            .energy
            .value();
        println!(
            "  {name}: {:.4} kWh (Default {base:.4}, LUT {lut_e:.4}), max {:.1} C, {} changes, avg {:.0} RPM",
            m.total_energy.as_kwh().value(),
            m.max_temp.degrees(),
            m.fan_changes,
            m.avg_rpm.value()
        );
    }
    Ok(())
}
