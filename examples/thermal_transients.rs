//! Thermal-transient exploration (the paper's Fig. 1 experiments):
//! watch the CPU heat up under load at different fan speeds, observe
//! the fan-speed-dependent time constants, and print an ASCII rendition
//! of Fig. 1(a).
//!
//! ```text
//! cargo run --release -p leakctl --example thermal_transients
//! ```

use leakctl::prelude::*;
use leakctl::report::{ascii_chart, ChartSeries};
use leakctl::{fig1a, RunOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Direct platform access: step the twin manually at 100 % load and
    // print the first minutes of the transient at two fan speeds.
    for rpm in [1800.0, 4200.0] {
        let mut server = Server::new(ServerConfig::default(), 42)?;
        server.command_fan_speed(Rpm::new(rpm));
        // Idle-settle first so the transient starts clean.
        for _ in 0..600 {
            server.step(SimDuration::from_secs(1), Utilization::IDLE)?;
        }
        println!("\n100% load step at {rpm:.0} RPM (true die temperature):");
        let t0 = server.max_die_temperature().degrees();
        print!("  t=0s {t0:.1}C");
        for k in 1..=10u32 {
            for _ in 0..60 {
                server.step(SimDuration::from_secs(1), Utilization::FULL)?;
            }
            print!("  t={}m {:.1}C", k, server.max_die_temperature().degrees());
        }
        println!();
    }

    // The full Fig. 1(a) protocol through the experiment runner.
    println!("\nreproducing Fig. 1(a) (this takes five 45-minute protocol runs)...");
    let fig = fig1a(&RunOptions::default(), 42)?;
    let series: Vec<ChartSeries> = fig
        .series
        .iter()
        .map(|s| ChartSeries {
            label: s.label.clone(),
            points: s.points.clone(),
        })
        .collect();
    println!("{}", ascii_chart(&series, 90, 20));
    println!(
        "paper shape: ~86 C at 1800 RPM down to ~55 C at 4200 RPM, with\n\
         the 1800 RPM transient several times slower than the 4200 RPM one."
    );
    Ok(())
}
