//! The Test-4 "shell workload": generate Poisson-arrival /
//! exponential-service utilization traces with the M/M/c queueing
//! model, inspect their statistics, and run the LUT controller on them
//! at several offered loads.
//!
//! ```text
//! cargo run --release -p leakctl --example shell_workload
//! ```

use leakctl::prelude::*;
use leakctl::RunOptions;
use leakctl_sim::SimRng;
use leakctl_workload::MmcQueue;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the LUT from a quick characterization...");
    let data = characterize(&CharacterizeOptions::quick(), 42)?;
    let fitted = fit_models(&data)?;
    let lut = build_lut_from_characterization(&data, &fitted)?;

    let run = RunOptions {
        record: false,
        ..RunOptions::default()
    };

    for target_pct in [25.0, 45.0, 70.0] {
        let target = Utilization::from_percent(target_pct)?;
        let queue = MmcQueue::for_target_utilization(64, target, SimDuration::from_secs(1))
            .map_err(|e| format!("queue construction: {e}"))?;
        let mut rng = SimRng::seed(42);
        let (profile, stats) = queue.generate(
            SimDuration::from_mins(80),
            SimDuration::from_secs(1),
            &mut rng,
        )?;
        println!(
            "\noffered load {target_pct:.0}%: {} arrivals, {} completions, \
             mean util {:.1}%, peak {:.1}%, max queue {}",
            stats.arrivals,
            stats.completions,
            stats.mean_utilization.as_percent(),
            stats.peak_utilization.as_percent(),
            stats.max_queue_len
        );

        let mut default = FixedSpeedController::paper_default();
        let base = leakctl::run_experiment(&run, profile.clone(), &mut default, 42)?;
        let mut lut_ctl = LutController::paper_default(lut.clone());
        let ours = leakctl::run_experiment(&run, profile, &mut lut_ctl, 42)?;
        println!(
            "  Default: {:.4} kWh, max {:.1} C | LUT: {:.4} kWh, max {:.1} C, avg {:.0} RPM, {} changes",
            base.metrics.total_energy.as_kwh().value(),
            base.metrics.max_temp.degrees(),
            ours.metrics.total_energy.as_kwh().value(),
            ours.metrics.max_temp.degrees(),
            ours.metrics.avg_rpm.value(),
            ours.metrics.fan_changes
        );
        let saved = (base.metrics.total_energy.value() - ours.metrics.total_energy.value())
            / base.metrics.total_energy.value()
            * 100.0;
        println!("  LUT saves {saved:.1}% total energy");
    }
    Ok(())
}
