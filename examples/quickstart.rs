//! Quickstart: build the digital-twin server, run the LUT controller on
//! a simple workload, and compare its energy against the vendor-default
//! cooling.
//!
//! ```text
//! cargo run --release -p leakctl --example quickstart
//! ```

use leakctl::prelude::*;
use leakctl::RunOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Characterize the machine on a reduced grid and identify the
    //    paper's Eqn. 2 constants from the measurements.
    println!("characterizing the server (reduced 4x4 grid)...");
    let data = characterize(&CharacterizeOptions::quick(), 42)?;
    let fitted = fit_models(&data)?;
    println!(
        "fitted: P = {:.1} + {:.4}*U + {:.4}*exp({:.5}*T)  (rmse {:.2} W)",
        fitted.base, fitted.k1, fitted.k2, fitted.k3, fitted.goodness.rmse
    );

    // 2. Build the lookup table of energy-optimal fan speeds.
    let lut = build_lut_from_characterization(&data, &fitted)?;
    println!("LUT ({} bins):", lut.len());
    for (u, rpm) in lut.entries() {
        println!("  <= {:>5.1}% -> {:>4.0} RPM", u.as_percent(), rpm.value());
    }

    // 3. A simple day-in-the-life profile: idle-ish morning, busy
    //    afternoon, wind-down.
    let profile = Profile::builder()
        .hold_percent(20.0, SimDuration::from_mins(15))?
        .ramp_percent(20.0, 90.0, SimDuration::from_mins(10))?
        .hold_percent(90.0, SimDuration::from_mins(20))?
        .ramp_percent(90.0, 10.0, SimDuration::from_mins(15))?
        .build();

    // 4. Run it under the default cooling and under the LUT controller.
    let options = RunOptions::default();
    let mut default = FixedSpeedController::paper_default();
    let base = leakctl::run_experiment(&options, profile.clone(), &mut default, 42)?;
    let mut lut_ctl = LutController::paper_default(lut);
    let ours = leakctl::run_experiment(&options, profile, &mut lut_ctl, 42)?;

    let b = &base.metrics;
    let o = &ours.metrics;
    println!("\n              {:>12} {:>12}", "Default", "LUT");
    println!(
        "energy (kWh)  {:>12.4} {:>12.4}",
        b.total_energy.as_kwh().value(),
        o.total_energy.as_kwh().value()
    );
    println!(
        "peak power    {:>11.0}W {:>11.0}W",
        b.peak_power.value(),
        o.peak_power.value()
    );
    println!(
        "max temp      {:>11.1}C {:>11.1}C",
        b.max_temp.degrees(),
        o.max_temp.degrees()
    );
    println!(
        "avg fan       {:>9.0}RPM {:>9.0}RPM",
        b.avg_rpm.value(),
        o.avg_rpm.value()
    );
    println!("fan changes   {:>12} {:>12}", b.fan_changes, o.fan_changes);

    let saved = (b.total_energy.value() - o.total_energy.value()) / b.total_energy.value() * 100.0;
    println!("\ntotal energy saved by the LUT controller: {saved:.1}%");
    Ok(())
}
