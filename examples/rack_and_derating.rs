//! Beyond the paper: (1) how the sea-level LUT derates with ambient
//! temperature and altitude — the reason vendors pin fans at a high
//! minimum speed — and (2) a four-server rack with exhaust
//! recirculation warming the shared inlet.
//!
//! ```text
//! cargo run --release -p leakctl --example rack_and_derating
//! ```

use leakctl::derating::{air_density_ratio, derating_sweep};
use leakctl::prelude::*;
use leakctl::rack::Rack;
use leakctl::report::ascii_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the LUT from a quick characterization...");
    let data = characterize(&CharacterizeOptions::quick(), 42)?;
    let fitted = fit_models(&data)?;
    let lut = leakctl::build_lut_from_characterization(&data, &fitted)?;
    println!(
        "LUT full-load speed: {:.0} RPM\n",
        lut.lookup(Utilization::FULL).value()
    );

    // ---- 1. Ambient / altitude derating -----------------------------
    let points: Vec<(f64, f64)> = vec![
        (24.0, 0.0),
        (28.0, 0.0),
        (32.0, 0.0),
        (36.0, 0.0),
        (40.0, 0.0),
        (24.0, 1_500.0),
        (24.0, 3_000.0),
        (32.0, 3_000.0),
    ];
    let sweep = derating_sweep(&ServerConfig::default(), &lut, &points, 42)?;
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.ambient_c),
                format!("{:.0}", p.altitude_m),
                format!("{:.2}", air_density_ratio(p.altitude_m)),
                format!("{:.0}", p.lut_rpm.value()),
                if p.lut_max_temp.degrees().is_finite() {
                    format!("{:.1}", p.lut_max_temp.degrees())
                } else {
                    "runaway".to_owned()
                },
                if p.lut_safe {
                    "yes".into()
                } else {
                    "NO".into()
                },
                p.required_rpm
                    .map_or_else(|| "none!".to_owned(), |r| format!("{:.0}", r.value())),
            ]
        })
        .collect();
    println!(
        "derating of the sea-level LUT at 100% load (75 C target):\n{}",
        ascii_table(
            &[
                "Ambient (C)",
                "Altitude (m)",
                "Density",
                "LUT RPM",
                "Max T (C)",
                "Safe",
                "Required RPM",
            ],
            &rows
        )
    );
    println!(
        "this is the paper's point about vendor defaults: a table tuned at\n\
         24 C sea level must be re-derived (or fans sped up) for harsher\n\
         environments.\n"
    );

    // ---- 2. Rack with exhaust recirculation -------------------------
    for (label, recirc) in [
        ("sealed aisle (r = 0)", 0.0),
        ("leaky aisle (r = 4 mK/W)", 0.004),
    ] {
        let mut rack = Rack::new(ServerConfig::default(), 4, recirc, 42)?;
        rack.command_all(lut.lookup(Utilization::FULL));
        for _ in 0..2_400 {
            rack.step(SimDuration::from_secs(1), Utilization::FULL)?;
        }
        println!(
            "{label}: inlet {:.1} C, rack power {:.0} W, hottest die {:.1} C",
            rack.inlet_temperature().degrees(),
            rack.total_power().value(),
            rack.max_die_temperature().degrees()
        );
    }
    println!(
        "\nrecirculation shifts every server's operating point upward —\n\
         per-rack inlet sensing (or conservative tables) becomes necessary."
    );
    Ok(())
}
