//! Characterization and model fitting, end to end: sweep utilization ×
//! fan speed on the digital twin, fit the paper's leakage model, and
//! compare the recovered constants against both the paper's fit and the
//! twin's ground truth.
//!
//! ```text
//! cargo run --release -p leakctl --example characterize
//! ```

use leakctl::prelude::*;
use leakctl::report::ascii_table;
use leakctl::{build_lut_from_characterization, paper};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("running the paper's full characterization protocol");
    println!("(8 utilization levels x 5 fan speeds, 45 minutes each)...");
    let data = characterize(&CharacterizeOptions::paper(), 42)?;

    // Show the measured grid at 100 % utilization — the basis of
    // Fig. 2(a).
    let full: Vec<_> = data.at_utilization(Utilization::FULL);
    let rows: Vec<Vec<String>> = full
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.rpm.value()),
                format!("{:.1}", p.avg_cpu_temp.degrees()),
                format!("{:.1}", p.max_cpu_temp.degrees()),
                format!("{:.1}", p.system_power.value()),
                format!("{:.1}", p.fan_power.value()),
            ]
        })
        .collect();
    println!(
        "\nmeasured steady points at 100% utilization:\n{}",
        ascii_table(
            &["RPM", "T avg (C)", "T max (C)", "P sys (W)", "P fan (W)"],
            &rows
        )
    );

    let fitted = fit_models(&data)?;
    println!("model fit (this reproduction vs the paper):");
    println!("  k1 = {:.4} W/%   (paper {:.4})", fitted.k1, paper::K1);
    println!("  k2 = {:.4} W     (paper {:.4})", fitted.k2, paper::K2);
    println!("  k3 = {:.5} 1/C   (paper {:.5})", fitted.k3, paper::K3);
    println!(
        "  rmse = {:.3} W    (paper {:.3}),  accuracy = {:.1}% (paper {:.0}%)",
        fitted.goodness.rmse,
        paper::FIT_RMSE_W,
        fitted.goodness.accuracy_percent,
        paper::FIT_ACCURACY_PCT
    );

    let lut = build_lut_from_characterization(&data, &fitted)?;
    println!("\ngenerated LUT:");
    for (u, rpm) in lut.entries() {
        println!("  <= {:>5.1}% -> {:>4.0} RPM", u.as_percent(), rpm.value());
    }
    println!(
        "\nfull-load optimum: {:.0} RPM (paper: {:.0} RPM at ~{:.0} C)",
        lut.lookup(Utilization::FULL).value(),
        paper::OPTIMUM_RPM,
        paper::OPTIMUM_TEMP_C
    );

    println!("\nfull dataset CSV:\n{}", data.to_csv());
    Ok(())
}
